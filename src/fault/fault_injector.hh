/**
 * @file
 * Bus-level fault injection for the Multicube.
 *
 * The paper's "Timing Considerations" robustness claim is that the
 * valid-bit-per-memory-line makes the protocol self-healing: requests
 * that are mis-routed (or simply discarded by a controller) bounce off
 * memory and retry. The FaultInjector turns that claim into a testable
 * subsystem: it taps every bus of a MulticubeSystem (the same attach
 * pattern as CoherenceChecker, but at the enqueue side via
 * Bus::setFaultHook) and applies a seeded FaultPlan — dropping
 * requests, dropping recoverable replies, delaying ops, duplicating
 * requests — while the controller-side transaction watchdog provides
 * the retry half of the loop.
 *
 * Eligibility rules (what may be faulted) are part of the model, not
 * an implementation detail. The protocol is memoryless, so the only
 * losses it can recover from are those where either the state needed
 * to re-serve the transaction still exists somewhere, or the op will
 * be regenerated:
 *
 *  - DropRequest: any op with op::Request. The requester's watchdog
 *    reissues; MLT/memory state is only changed by *delivered* ops.
 *  - DropReply: replies whose loss strands no state — failure notices
 *    (op::Fail), SYNC queue acks (the chain still points at the
 *    waiter), and memory READ data (op::NoPurge; memory stays valid).
 *    Data-carrying ownership transfers are never dropped: the reply
 *    is the only copy of the line, which no retry can resurrect.
 *  - Delay: any op. Delivery remains an atomic broadcast, so MLT
 *    column agreement (checker I5) is unaffected; delays only widen
 *    the windows the protocol already tolerates.
 *  - Duplicate: request ops except ALLOCATE. A stale duplicate
 *    request is re-served and the spurious reply parked back to
 *    memory (see SnoopController's duplicate-reply guards); an
 *    ALLOCATE ack carries no data, so a spurious one cannot be
 *    reconstructed into a parkable line.
 *
 * Every spec can be probabilistic (deterministically seeded) or an
 * explicit schedule ("fire on the k-th eligible op") for regression
 * repros. Per-fault-type counters land in the system stats tree under
 * "fault".
 */

#ifndef MCUBE_FAULT_FAULT_INJECTOR_HH
#define MCUBE_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "bus/bus_op.hh"
#include "sim/json.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

class MulticubeSystem;

/** The injectable fault classes. */
enum class FaultKind : std::uint8_t
{
    DropRequest,  //!< discard a request op at enqueue
    DropReply,    //!< discard a recoverable reply op
    Delay,        //!< enqueue the op late
    Duplicate,    //!< enqueue a request twice
    /**
     * A sustained bus outage: when the spec fires, the matched bus
     * rejects enqueues for a whole tick window. Safely-droppable ops
     * (per the DropRequest/DropReply rules) arriving in the window are
     * discarded; ops whose loss the protocol could not recover from
     * are instead deferred to the end of the window, modelling the
     * sender's hardware retrying until the bus answers again. Unlike
     * the one-shot kinds this stresses *sustained* watchdog backoff:
     * every reissue inside the window is swallowed too.
     */
    Outage,
    /**
     * @{ Permanent fail-stop faults. Unlike every kind above, these
     * are not recoverable by retry: the component dies at the spec's
     * atTick and stays dead. They are executed by the
     * ReconfigurationManager (src/fault/reconfig.hh), not by the
     * injector's enqueue hook — eligible() returns false for them, so
     * a plan mixing fail-stops with transient faults behaves exactly
     * like the transient-only plan until the kill fires.
     */
    FailStopBus,     //!< kill one bus (busDim/busIndex select it)
    FailStopNode,    //!< kill one snooping controller (targetNode)
    FailStopMemory,  //!< kill one memory module (busIndex = column)
    /** @} */
};

/** Text name of a fault kind (stat names, reports, JSON). */
const char *toString(FaultKind kind);

/** Inverse of toString(FaultKind); false if @p name is unknown. */
bool faultKindFromString(const std::string &name, FaultKind &out);

/** One fault rule of a plan. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DropRequest;
    /** Per-eligible-op injection probability (ignored when atMatches
     *  is non-empty). */
    double prob = 0.0;
    /** Extra ticks for FaultKind::Delay. */
    Tick delayTicks = 2000;
    /** Window length for FaultKind::Outage. */
    Tick outageTicks = 20'000;
    /** Restrict to row (0) or column (1) buses; -1 = both. For
     *  FailStopBus this *selects* the victim and both fields are
     *  required (>= 0). */
    int busDim = -1;
    /** Restrict to one bus index within the dimension; -1 = all. For
     *  FailStopMemory this selects the victim column. */
    int busIndex = -1;
    /** FailStopNode only: the controller to kill. */
    int targetNode = -1;
    /** FailStop kinds only: simulated time the component dies. */
    Tick atTick = 0;
    /**
     * FailStop kinds only: graceful retire. The dying component gets
     * an (unrealistically clairvoyant, but useful as the availability
     * upper bound) scrub pass first — every Modified line it owns is
     * written back to a live home memory before the kill — so no data
     * is lost and data_loss_lines stays 0.
     */
    bool graceful = false;
    /** Restrict to one transaction type. */
    std::optional<TxnType> txn{};
    /**
     * Deterministic schedule: fire exactly on these (0-based) indices
     * of the spec's eligible-op match stream. Exact repro handle for
     * regressions; overrides prob.
     */
    std::vector<std::uint64_t> atMatches{};
    /** Cap on total injections by this spec. */
    std::uint64_t maxInjections = UINT64_MAX;
    /** Active window in simulated time. */
    Tick activeFrom = 0;
    Tick activeUntil = maxTick;
    /**
     * Bypass the recoverability rules and match on the kind's raw
     * structural class instead (DropReply: *any* reply, including
     * data-carrying ownership transfers). This deliberately breaks
     * the protocol's fault model — a dropped ownership transfer
     * destroys the only copy of the line — and exists so the fuzz
     * harness can plant a real bug and prove it finds and shrinks it.
     * Never set it in a resilience campaign you expect to converge.
     */
    bool unsafe = false;
};

/** A complete, reproducible fault campaign configuration. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs{};

    /** @{ Convenience constructors for the common single-fault plans. */
    static FaultPlan dropRequests(double prob, std::uint64_t seed = 1);
    static FaultPlan dropReplies(double prob, std::uint64_t seed = 1);
    static FaultPlan delays(double prob, Tick delay_ticks,
                            std::uint64_t seed = 1);
    static FaultPlan duplicates(double prob, std::uint64_t seed = 1);
    static FaultPlan outages(double prob, Tick outage_ticks,
                             std::uint64_t seed = 1);
    static FaultPlan failStopBus(int dim, int index, Tick at_tick,
                                 bool graceful = false);
    static FaultPlan failStopNode(int node, Tick at_tick,
                                  bool graceful = false);
    static FaultPlan failStopMemory(int column, Tick at_tick,
                                    bool graceful = false);
    /** @} */
};

/** @{ JSON round-tripping for repro artifacts (tools/fuzz_campaign).
 *  fromJson() returns false (leaving @p out partially filled) on a
 *  structurally invalid document. */
Json toJson(const FaultSpec &spec);
Json toJson(const FaultPlan &plan);
bool faultSpecFromJson(const Json &j, FaultSpec &out);
bool faultPlanFromJson(const Json &j, FaultPlan &out);

/**
 * Why faultPlanFromJson(@p j, ...) would fail, as a distinct,
 * actionable message ("" if the plan parses). An unknown fault-kind
 * string is named verbatim rather than silently defaulting — the
 * exit-code-4 convention CLI loaders follow for corrupt artifacts.
 */
std::string faultPlanParseError(const Json &j);
/** @} */

/**
 * Applies a FaultPlan to every bus of a system. Construct after the
 * system (and alongside a CoherenceChecker); detaches automatically on
 * destruction.
 */
class FaultInjector
{
  public:
    FaultInjector(MulticubeSystem &sys, const FaultPlan &plan);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** @{ Per-fault-type injection counts. */
    std::uint64_t requestsDropped() const
    {
        return statDropRequest.value();
    }
    std::uint64_t repliesDropped() const
    {
        return statDropReply.value();
    }
    std::uint64_t opsDelayed() const { return statDelay.value(); }
    std::uint64_t opsDuplicated() const
    {
        return statDuplicate.value();
    }
    std::uint64_t outagesOpened() const { return statOutage.value(); }
    std::uint64_t outageDrops() const
    {
        return statOutageDrop.value();
    }
    std::uint64_t outageDeferrals() const
    {
        return statOutageDefer.value();
    }
    std::uint64_t totalInjections() const;
    /** Ops offered to the hook across all buses. */
    std::uint64_t opsSeen() const { return statSeen.value(); }
    /** @} */

    /**
     * Match-stream indices at which spec @p spec_index actually fired
     * so far. Feeding these back as the spec's atMatches (with prob
     * cleared) freezes a probabilistic spec into an explicit schedule
     * that reproduces the identical injections on a re-run — the
     * first step of repro shrinking.
     */
    const std::vector<std::uint64_t> &
    firedMatches(std::size_t spec_index) const
    {
        return states[spec_index].firedAt;
    }

    /** True if @p op may be faulted with @p kind at all (the
     *  recoverability rules above); exposed for tests. */
    static bool eligible(FaultKind kind, const BusOp &op);

    /** The structural op class an *unsafe* spec of @p kind matches
     *  (recoverability deliberately ignored). */
    static bool eligibleUnsafe(FaultKind kind, const BusOp &op);

    /** Register the "fault" stat group under @p parent. */
    void regStats(StatGroup &parent);

  private:
    struct Hook : BusFaultHook
    {
        FaultInjector *inj = nullptr;
        int dim = 0;        //!< 0 = row bus, 1 = column bus
        int index = 0;      //!< bus index within the dimension
        unsigned hookId = 0;  //!< linear index over all hooks

        FaultAction onEnqueue(const Bus &bus, const BusOp &op) override;
    };

    /** Mutable per-spec match/injection bookkeeping. */
    struct SpecState
    {
        std::uint64_t matches = 0;     //!< eligible ops seen
        std::uint64_t injections = 0;  //!< faults actually fired
        /** spec.atMatches, sorted for binary search (shrunken repros
         *  can carry tens of thousands of scheduled injections). */
        std::vector<std::uint64_t> schedule;
        /** Match indices where the spec fired (schedule freezing). */
        std::vector<std::uint64_t> firedAt;
        /** Outage only: per-hook tick the window closes at. */
        std::vector<Tick> windowEnd;
    };

    FaultAction decide(const Hook &hook, const BusOp &op);
    bool specApplies(const FaultSpec &spec, SpecState &state,
                     const Hook &hook, const BusOp &op);

    MulticubeSystem &sys;
    FaultPlan plan;
    Random rng;
    std::vector<std::unique_ptr<Hook>> hooks;
    std::vector<SpecState> states;

    Counter statSeen;
    Counter statDropRequest;
    Counter statDropReply;
    Counter statDelay;
    Counter statDuplicate;
    Counter statOutage;
    Counter statOutageDrop;
    Counter statOutageDefer;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_FAULT_FAULT_INJECTOR_HH
