#include "fault/reconfig.hh"

#include <cassert>
#include <utility>

#include "core/checker.hh"
#include "core/system.hh"
#include "sim/log.hh"

namespace mcube
{

namespace
{

bool
isFailStop(FaultKind k)
{
    return k == FaultKind::FailStopBus || k == FaultKind::FailStopNode
        || k == FaultKind::FailStopMemory;
}

} // namespace

bool
ReconfigurationManager::planNeedsReconfig(const FaultPlan &plan)
{
    for (const FaultSpec &s : plan.specs)
        if (isFailStop(s.kind))
            return true;
    return false;
}

ReconfigurationManager::ReconfigurationManager(
    MulticubeSystem &sys, const FaultPlan &plan,
    CoherenceChecker *checker, const ReconfigParams &params)
    : sys(sys), checker(checker), params(params), stats("reconfig")
{
    stats.addCounter("kills", statKills, "fail-stop kills executed");
    stats.addCounter("detections", statDetections,
                     "kills detected (escalation or timeout)");
    stats.addCounter("timeout_detections", statTimeoutDetections,
                     "kills detected only by the fallback deadline");
    stats.addCounter("epochs", statEpochs,
                     "degradation epoch transitions completed");
    stats.addCounter("data_loss_lines", statDataLoss,
                     "dirty lines lost to fail-stops");
    stats.addCounter("aborted_txns", statAborted,
                     "in-flight transactions aborted at cutovers");
    stats.addCounter("quarantined_nodes", statQuarantinedNodes,
                     "snooping controllers retired");
    stats.addCounter("phantom_repairs", statPhantomRepairs,
                     "stuck lines repaired by the lazy phantom path");
    stats.addHistogram("time_to_detect", statTimeToDetect,
                       "kill-to-detection latency (ticks)");
    stats.addHistogram("time_to_reconfigure", statTimeToReconfigure,
                       "detection-to-cutover latency (ticks)");

    retired_.assign(sys.numNodes(), 0);
    quarCols.assign(sys.n(), 0);

    for (const FaultSpec &s : plan.specs) {
        if (!isFailStop(s.kind))
            continue;
        Kill k;
        k.spec = s;
        kills_.push_back(std::move(k));
    }

    EventQueue &eq = sys.eventQueue();
    for (std::size_t k = 0; k < kills_.size(); ++k) {
        Tick at = std::max(kills_[k].spec.atTick, eq.now());
        eq.schedule(at, [this, k] { executeKill(k); });
    }

    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        sys.node(id).onWatchdogReissue =
            [this](NodeId node, Addr addr, unsigned count) {
                onReissue(node, addr, count);
            };
    }

    if (checker) {
        checker->setQuarantined(
            [this](Addr addr) { return addrQuarantined(addr); });
    }
}

bool
ReconfigurationManager::addrQuarantined(Addr addr) const
{
    if (!anyQuarantine)
        return false;
    return quarCols[sys.gridMap().homeColumn(addr)] != 0;
}

bool
ReconfigurationManager::nodeRetired(NodeId id) const
{
    return retired_[id] != 0;
}

bool
ReconfigurationManager::requestRoutable(NodeId req, Addr addr) const
{
    if (addrQuarantined(addr))
        return false;
    const GridMap &grid = sys.gridMap();
    if (!grid.reachable(req))
        return false;
    unsigned hc = grid.homeColumn(addr);
    if (grid.colOf(req) != hc
        && !grid.reachable(grid.nodeAt(grid.rowOf(req), hc)))
        return false;
    // A modified owner is reached through req's row-mate on the
    // owner's column (the MLT forward); home-column reachability alone
    // is not enough while someone else owns the line.
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (sys.node(id).modeOf(addr) != Mode::Modified)
            continue;
        unsigned oc = grid.colOf(id);
        if (grid.colOf(req) != oc
            && !grid.reachable(grid.nodeAt(grid.rowOf(req), oc)))
            return false;
        break;
    }
    return true;
}

void
ReconfigurationManager::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

// ---------------------------------------------------------------------
// Kill execution
// ---------------------------------------------------------------------

void
ReconfigurationManager::retireNode(NodeId id, Kill &kill)
{
    if (retired_[id])
        return;
    retired_[id] = 1;
    SnoopController &c = sys.node(id);
    if (c.busy())
        kill.inFlightAddrs.push_back(c.pendingAddr());
    c.retire();
    sys.gridMap().markUnreachable(id);
    kill.deadNodes.push_back(id);
    ++statQuarantinedNodes;
}

void
ReconfigurationManager::dropTableColumnWide(unsigned column, Addr addr)
{
    // Dropping from already-retired copies too is harmless (frozen
    // tables are never consulted again) and keeps the loop branchless.
    for (unsigned r = 0; r < sys.n(); ++r)
        sys.node(r, column).dropTableEntry(addr);
}

void
ReconfigurationManager::scrubNode(NodeId id)
{
    // Graceful retire: clairvoyant write-back of every dirty line the
    // dying node owns into a (still-)live home memory, with the table
    // entries dropped column-wide so the surviving grid sees a clean
    // unmodified line. Locks die with their holder: the scrubbed copy
    // is stored unlocked.
    const GridMap &grid = sys.gridMap();
    SnoopController &c = sys.node(id);
    std::vector<Addr> dirty;
    c.cacheArray().forEach([&](const CacheLine &l) {
        if (l.mode == Mode::Modified)
            dirty.push_back(l.addr);
    });
    for (Addr a : dirty) {
        unsigned home = grid.homeColumn(a);
        if (quarCols[home])
            continue;  // home died in an earlier kill: quarantine rules
        LineData d = c.dataOf(a);
        bool lock_line = d.lock != 0 || d.next != invalidNode;
        d.lock = 0;
        d.next = invalidNode;
        sys.memory(home).poke(a, d, true);
        dropTableColumnWide(grid.colOf(id), a);
        c.retireLine(a);
        if (lock_line) {
            // Waiters may be chained on the dying holder; make sure
            // the cutover aborts their stranded transactions.
            scrubbedLockAddrs.push_back(a);
        }
    }
}

void
ReconfigurationManager::scrubColumn(unsigned column)
{
    // Graceful memory retire: flush every live cache's dirty line that
    // is homed on the dying column into its memory before the kill, so
    // the frozen store holds current data (recoverable off-line) and
    // data_loss_lines stays 0.
    const GridMap &grid = sys.gridMap();
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (retired_[id])
            continue;
        SnoopController &c = sys.node(id);
        std::vector<Addr> dirty;
        c.cacheArray().forEach([&](const CacheLine &l) {
            if (l.mode == Mode::Modified
                && grid.homeColumn(l.addr) == column)
                dirty.push_back(l.addr);
        });
        for (Addr a : dirty) {
            LineData d = c.dataOf(a);
            d.lock = 0;
            d.next = invalidNode;
            sys.memory(column).poke(a, d, true);
            dropTableColumnWide(grid.colOf(id), a);
            c.retireLine(a);
        }
    }
}

std::vector<NodeId>
ReconfigurationManager::killTargets(const Kill &kill) const
{
    const FaultSpec &spec = kill.spec;
    const GridMap &grid = sys.gridMap();
    std::vector<NodeId> targets;
    switch (spec.kind) {
      case FaultKind::FailStopNode:
        targets.push_back(static_cast<NodeId>(spec.targetNode));
        break;
      case FaultKind::FailStopBus: {
        unsigned idx = static_cast<unsigned>(spec.busIndex);
        for (unsigned i = 0; i < sys.gridMap().n(); ++i)
            targets.push_back(spec.busDim == 0 ? grid.nodeAt(idx, i)
                                               : grid.nodeAt(i, idx));
        break;
      }
      default:
        break;  // memory kills retire no nodes
    }
    return targets;
}

void
ReconfigurationManager::drainNode(NodeId id)
{
    if (retired_[id])
        return;
    SnoopController &c = sys.node(id);
    if (c.busy())
        ++statAborted;  // the drain aborts it (service interruption)
    c.beginDrain();
    // Route new traffic around the dying node immediately: replies
    // pick their fallback diagonal and workload filters stop issuing
    // requests that would relay through it, so nothing is queued
    // toward a component that is about to go silent.
    sys.gridMap().markUnreachable(id);
}

void
ReconfigurationManager::quarantineColumnNow(unsigned column, Kill &kill)
{
    quarCols[column] = 1;
    anyQuarantine = true;
    kill.quarantineColumn = static_cast<int>(column);
}

void
ReconfigurationManager::executeKill(std::size_t ki)
{
    Kill &kill = kills_[ki];
    const FaultSpec &spec = kill.spec;
    if (!spec.graceful) {
        darken(ki);
        return;
    }

    // Graceful phase 1: close the processor side of every node this
    // kill will retire (their in-flight replies still get parked by
    // their own live ports) and fence new traffic off a dying memory
    // column. The component itself stays up, serving and transferring
    // ownership to live requesters, until the darken tick.
    MCUBE_LOG(LogCat::Bus, sys.eventQueue().now(),
              "reconfig: graceful " << toString(spec.kind)
                                    << " kill " << ki << " quiescing");
    for (NodeId id : killTargets(kill))
        drainNode(id);
    if (spec.kind == FaultKind::FailStopMemory
        || (spec.kind == FaultKind::FailStopBus && spec.busDim == 1))
        quarantineColumnNow(static_cast<unsigned>(spec.busIndex), kill);

    EventQueue &eq = sys.eventQueue();
    eq.scheduleIn(params.gracefulQuiesceTicks / 2,
                  [this, ki] { silenceKill(ki); });
    eq.scheduleIn(params.gracefulQuiesceTicks,
                  [this, ki] { darken(ki); });
}

void
ReconfigurationManager::silenceKill(std::size_t ki)
{
    // Graceful phase 2: the dying nodes go silent on the wire, so no
    // reply naming them is ever queued on a bus that is about to die.
    for (NodeId id : killTargets(kills_[ki]))
        if (!retired_[id])
            sys.node(id).goSilent();
}

void
ReconfigurationManager::darken(std::size_t ki)
{
    Kill &kill = kills_[ki];
    assert(!kill.executed);
    kill.executed = true;
    anyKillExecuted = true;
    kill.killedAt = sys.eventQueue().now();
    ++statKills;
    const FaultSpec &spec = kill.spec;
    const unsigned n = sys.n();
    if (checker)
        checker->beginDegradedWindow();

    MCUBE_LOG(LogCat::Bus, kill.killedAt,
              "reconfig: executing " << toString(spec.kind)
                                     << " kill (graceful="
                                     << spec.graceful << ")");

    switch (spec.kind) {
      case FaultKind::FailStopNode: {
        NodeId target = static_cast<NodeId>(spec.targetNode);
        assert(spec.targetNode >= 0 && target < sys.numNodes());
        if (spec.graceful)
            scrubNode(target);
        retireNode(target, kill);
        break;
      }

      case FaultKind::FailStopBus: {
        assert(spec.busDim >= 0 && spec.busIndex >= 0
               && static_cast<unsigned>(spec.busIndex) < n);
        unsigned idx = static_cast<unsigned>(spec.busIndex);
        if (spec.busDim == 0) {
            // A dead row bus severs every node on the row from the
            // request network; the whole row retires.
            if (spec.graceful)
                for (unsigned c = 0; c < n; ++c)
                    scrubNode(sys.gridMap().nodeAt(idx, c));
            sys.rowBus(idx).failStop();
            for (unsigned c = 0; c < n; ++c)
                retireNode(sys.gridMap().nodeAt(idx, c), kill);
        } else {
            // A dead column bus takes the column's nodes *and* its
            // memory module with it: nothing on the column can be
            // reached any more, so the column's address range is
            // quarantined too.
            if (spec.graceful) {
                for (unsigned r = 0; r < n; ++r)
                    scrubNode(sys.gridMap().nodeAt(r, idx));
                scrubColumn(idx);
            }
            sys.colBus(idx).failStop();
            sys.memory(idx).failStop();
            for (unsigned r = 0; r < n; ++r)
                retireNode(sys.gridMap().nodeAt(r, idx), kill);
            quarantineColumnNow(idx, kill);
        }
        break;
      }

      case FaultKind::FailStopMemory: {
        assert(spec.busIndex >= 0
               && static_cast<unsigned>(spec.busIndex) < n);
        unsigned column = static_cast<unsigned>(spec.busIndex);
        if (spec.graceful)
            scrubColumn(column);
        sys.memory(column).failStop();
        quarantineColumnNow(column, kill);
        break;
      }

      default:
        assert(false && "non-fail-stop spec scheduled as a kill");
        break;
    }

    // Graceful scrubs of lock lines may leave live waiters chained on
    // a holder that no longer exists; route them into the cutover's
    // abort set.
    for (Addr a : scrubbedLockAddrs)
        kill.inFlightAddrs.push_back(a);
    scrubbedLockAddrs.clear();

    // Fallback deadline: even if no surviving traffic trips over the
    // corpse, the kill is detected eventually.
    sys.eventQueue().scheduleIn(params.detectTimeoutTicks, [this, ki] {
        if (!kills_[ki].detected)
            detect(ki, true);
    });
}

// ---------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------

void
ReconfigurationManager::onReissue(NodeId node, Addr addr, unsigned count)
{
    (void)node;
    if (count < params.escalationThreshold)
        return;

    // An escalated report is a symptom of *some* dead component; it
    // counts toward every executed-but-undetected kill. (Attribution
    // is deliberately coarse — real watchdog hardware cannot tell
    // which corpse its request died on either.)
    for (std::size_t k = 0; k < kills_.size(); ++k) {
        Kill &kill = kills_[k];
        if (!kill.executed || kill.detected)
            continue;
        if (++kill.detectCount >= params.detectThreshold)
            detect(k, false);
    }

    // Lazy phantom repair bookkeeping (only meaningful once a kill has
    // happened: transient-only escalations always self-heal).
    if (!anyKillExecuted)
        return;
    if (!requestRoutable(node, addr)) {
        // The request physically cannot be served on the degraded grid
        // (its relay row-mate died, possibly after the op was issued —
        // ownership moves). Abort it rather than let it escalate
        // forever; the line itself is fine, so don't feed the phantom
        // tracker. Abort from a fresh event, never inside watchdogFire.
        sys.eventQueue().scheduleIn(0, [this, node, addr] {
            SnoopController &c = sys.node(node);
            if (!retired_[node] && c.busy() && c.pendingAddr() == addr
                && !requestRoutable(node, addr)) {
                c.abortPending();
                ++statAborted;
            }
        });
        return;
    }
    Tick now = sys.eventQueue().now();
    Tick &first = stuckSince.ref(addr);
    if (first == 0) {
        first = now;
    } else if (now - first >= params.phantomGraceTicks) {
        // Repair from a fresh event, never from inside watchdogFire.
        sys.eventQueue().scheduleIn(
            0, [this, addr] { tryPhantomRepair(addr); });
    }
}

void
ReconfigurationManager::detect(std::size_t ki, bool by_timeout)
{
    Kill &kill = kills_[ki];
    if (kill.detected)
        return;
    kill.detected = true;
    kill.detectedAt = sys.eventQueue().now();
    ++statDetections;
    if (by_timeout)
        ++statTimeoutDetections;
    Tick lat = kill.detectedAt - kill.killedAt;
    statTimeToDetect.sample(static_cast<double>(lat));
    _detectLatencies.push_back(lat);
    MCUBE_LOG(LogCat::Bus, kill.detectedAt,
              "reconfig: kill " << ki << " detected after " << lat
                                << " ticks"
                                << (by_timeout ? " (timeout)" : ""));
    sys.eventQueue().scheduleIn(params.drainTicks,
                                [this, ki] { cutover(ki); });
}

// ---------------------------------------------------------------------
// Epoch cutover
// ---------------------------------------------------------------------

void
ReconfigurationManager::loseLine(NodeId owner, Addr addr)
{
    const GridMap &grid = sys.gridMap();
    unsigned home = grid.homeColumn(addr);
    ++statDataLoss;
    if (quarCols[home]) {
        // Dirty and homed on a dead memory: doubly gone; nothing to
        // revalidate.
        return;
    }
    MemoryModule &mem = sys.memory(home);
    LineData stale = mem.lineData(addr);
    stale.lock = 0;
    stale.next = invalidNode;
    mem.poke(addr, stale, true);
    MCUBE_LOG(LogCat::Bus, sys.eventQueue().now(),
              "reconfig: line " << addr << " (dirty at dead node "
                                << owner << ") lost; memory "
                                << "revalidated with stale token "
                                << stale.token);
    if (checker)
        checker->onLineLost(addr, stale.token);
}

void
ReconfigurationManager::abortPendingOn(Addr addr)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (retired_[id])
            continue;
        SnoopController &c = sys.node(id);
        if (c.busy() && c.pendingAddr() == addr) {
            c.abortPending();
            ++statAborted;
        }
    }
}

void
ReconfigurationManager::flushUnservableLines(std::vector<Addr> &affected)
{
    const GridMap &grid = sys.gridMap();
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (retired_[id])
            continue;
        SnoopController &c = sys.node(id);
        std::vector<Addr> doomed;
        c.cacheArray().forEach([&](const CacheLine &l) {
            if (l.mode != Mode::Modified)
                return;
            unsigned home = grid.homeColumn(l.addr);
            if (quarCols[home] || home == grid.colOf(id))
                return;
            if (!grid.reachable(grid.nodeAt(grid.rowOf(id), home)))
                doomed.push_back(l.addr);
        });
        for (Addr a : doomed) {
            // The owner is alive but its write-back path (the row-mate
            // on the home column) died: flush the *current* data
            // straight into memory — a modeled recovery write, not a
            // loss — and retire the cached copy so nothing dirty is
            // ever stranded behind the hole.
            LineData d = c.dataOf(a);
            bool lock_line = d.lock != 0 || d.next != invalidNode;
            d.lock = 0;
            d.next = invalidNode;
            sys.memory(grid.homeColumn(a)).poke(a, d, true);
            dropTableColumnWide(grid.colOf(id), a);
            c.retireLine(a);
            MCUBE_LOG(LogCat::Bus, sys.eventQueue().now(),
                      "reconfig: flushed unservable line " << a
                          << " from live node " << id);
            if (lock_line)
                affected.push_back(a);
        }
    }

    // Abort live pendings that can no longer be served on the degraded
    // grid (their relay row-mate died under them).
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (retired_[id])
            continue;
        SnoopController &c = sys.node(id);
        if (c.busy() && !requestRoutable(id, c.pendingAddr())) {
            c.abortPending();
            ++statAborted;
        }
    }
}

void
ReconfigurationManager::cutover(std::size_t ki)
{
    Kill &kill = kills_[ki];
    assert(kill.detected);
    if (kill.reconfigured)
        return;
    kill.reconfigured = true;
    Tick lat = sys.eventQueue().now() - kill.detectedAt;
    statTimeToReconfigure.sample(static_cast<double>(lat));
    _reconfigLatencies.push_back(lat);
    ++statEpochs;
    const GridMap &grid = sys.gridMap();
    const unsigned n = sys.n();

    MCUBE_LOG(LogCat::Bus, sys.eventQueue().now(),
              "reconfig: epoch " << statEpochs.value()
                                 << " cutover for kill " << ki);

    std::vector<Addr> affected = kill.inFlightAddrs;

    // 1. Audit the dead caches: dirty lines die with their owner
    //    (graceful scrubs emptied them at the kill tick), table
    //    entries naming the corpse leave the surviving column copies,
    //    and the frozen cache is purged so the checker's holder scans
    //    agree with the revalidated memory.
    for (NodeId d : kill.deadNodes) {
        SnoopController &dc = sys.node(d);
        std::vector<std::pair<Addr, Mode>> entries;
        dc.cacheArray().forEach([&](const CacheLine &l) {
            if (l.mode != Mode::Invalid)
                entries.emplace_back(l.addr, l.mode);
        });
        for (const auto &[a, m] : entries) {
            if (m == Mode::Modified) {
                dropTableColumnWide(grid.colOf(d), a);
                loseLine(d, a);
                affected.push_back(a);
            }
            dc.retireLine(a);
        }
    }

    // 2. Quarantine the dead memory's address range out of every live
    //    cache and table: those lines are frozen mid-protocol and no
    //    live copy can ever be written back or re-fetched.
    if (kill.quarantineColumn >= 0) {
        unsigned qc = static_cast<unsigned>(kill.quarantineColumn);
        for (NodeId id = 0; id < sys.numNodes(); ++id) {
            if (retired_[id])
                continue;
            SnoopController &c = sys.node(id);
            std::vector<std::pair<Addr, Mode>> doomed;
            c.cacheArray().forEach([&](const CacheLine &l) {
                if (l.mode != Mode::Invalid
                    && grid.homeColumn(l.addr) == qc)
                    doomed.emplace_back(l.addr, l.mode);
            });
            for (const auto &[a, m] : doomed) {
                if (m == Mode::Modified) {
                    // Dirty with an unreachable home: lost outright.
                    ++statDataLoss;
                    dropTableColumnWide(grid.colOf(id), a);
                }
                c.retireLine(a);
            }
        }
        // Sweep surviving tables for quarantined entries whose cached
        // copy is already gone (e.g. owned by a node audited above).
        for (unsigned col = 0; col < n; ++col) {
            unsigned live_row = n;
            for (unsigned r = 0; r < n; ++r) {
                if (!retired_[grid.nodeAt(r, col)]) {
                    live_row = r;
                    break;
                }
            }
            if (live_row == n)
                continue;
            std::vector<Addr> drop;
            sys.node(live_row, col).table().forEach([&](Addr a) {
                if (grid.homeColumn(a) == qc)
                    drop.push_back(a);
            });
            for (Addr a : drop)
                dropTableColumnWide(col, a);
        }
        // Abort every live transaction bound for the dead memory.
        for (NodeId id = 0; id < sys.numNodes(); ++id) {
            if (retired_[id])
                continue;
            SnoopController &c = sys.node(id);
            if (c.busy() && grid.homeColumn(c.pendingAddr()) == qc) {
                c.abortPending();
                ++statAborted;
            }
        }
    }

    // 2b. Live nodes on rows that lost their relay to some home
    //     column flush those dirty lines and drop the stranded
    //     pendings (no loss: the flush moves current data).
    flushUnservableLines(affected);

    // 3. Abort transactions stranded on lines the kill touched (the
    //    dead nodes' own pendings may root live waiter chains, and a
    //    lost line's waiters would otherwise spin on a bounce loop
    //    until the phantom repair caught them) — and seed the phantom
    //    repair path for each of them: a grant that died in flight
    //    into the corpse leaves a line nobody may ever request again
    //    (its waiters were just aborted), so the lazy report-driven
    //    repair alone would never fire.
    EventQueue &eq = sys.eventQueue();
    for (Addr a : affected) {
        abortPendingOn(a);
        if (addrQuarantined(a))
            continue;
        Tick &first = stuckSince.ref(a);
        if (first == 0)
            first = eq.now();
        eq.scheduleIn(params.phantomGraceTicks,
                      [this, a] { tryPhantomRepair(a); });
    }

    if (checker) {
        checker->onEpochTransition();
        // Close this kill's degraded window once every bounded repair
        // above has had time to settle.
        eq.scheduleIn(degradedWindowLag(),
                      [this] { checker->endDegradedWindow(); });
    }
}

// ---------------------------------------------------------------------
// Lazy phantom repair
// ---------------------------------------------------------------------

Tick
ReconfigurationManager::degradedWindowLag() const
{
    // A phantom is repaired at most first-report + grace + one full
    // (capped, jittered) watchdog backoff period + the settle delay
    // after the cutover; the cutover-seeded repairs are bounded by
    // grace + settle alone. Add the checker's own suspect window so a
    // last-instant offence ages out inside the lag too.
    const ControllerParams &cp = sys.params().ctrl;
    Tick backoff = (cp.requestTimeoutTicks << cp.watchdogBackoffShift)
                 + cp.watchdogJitterTicks;
    return params.phantomGraceTicks + params.repairSettleTicks
         + 2 * backoff + 10'000;
}

bool
ReconfigurationManager::looksPhantom(Addr addr) const
{
    if (addrQuarantined(addr))
        return false;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        // A holder — live, or dead-but-not-yet-cut-over (the cutover
        // owns that accounting) — means the line is not a phantom.
        if (sys.node(id).modeOf(addr) == Mode::Modified)
            return false;
    }
    return !sys.memory(sys.gridMap().homeColumn(addr)).lineValid(addr);
}

void
ReconfigurationManager::tryPhantomRepair(Addr addr)
{
    // Re-verify everything at repair time: the line may have healed
    // (or been cut over) since the report that scheduled us.
    if (!stuckSince.contains(addr))
        return;
    if (addrQuarantined(addr)) {
        stuckSince.erase(addr);
        return;
    }
    if (!looksPhantom(addr)) {
        stuckSince.erase(addr);
        return;
    }
    // Looks owner-less right now — but so does a line whose ownership
    // transfer is legitimately on a live wire for a few bus latencies.
    // Only commit the repair if it still looks that way after a settle
    // window no real transfer can span.
    sys.eventQueue().scheduleIn(
        params.repairSettleTicks,
        [this, addr] { confirmPhantomRepair(addr); });
}

void
ReconfigurationManager::confirmPhantomRepair(Addr addr)
{
    if (!stuckSince.contains(addr))
        return;  // a concurrent confirm already repaired it
    if (!looksPhantom(addr)) {
        stuckSince.erase(addr);
        return;
    }

    // Genuinely stuck: no owner anywhere, memory invalid, across the
    // whole settle window. The line's last value died in flight into a
    // dead component; repair with the stale memory copy.
    MemoryModule &mem = sys.memory(sys.gridMap().homeColumn(addr));
    for (unsigned col = 0; col < sys.n(); ++col)
        dropTableColumnWide(col, addr);
    LineData stale = mem.lineData(addr);
    stale.lock = 0;
    stale.next = invalidNode;
    mem.poke(addr, stale, true);
    ++statDataLoss;
    ++statPhantomRepairs;
    MCUBE_LOG(LogCat::Bus, sys.eventQueue().now(),
              "reconfig: phantom line " << addr
                                        << " repaired with stale token "
                                        << stale.token);
    if (checker)
        checker->onLineLost(addr, stale.token);
    stuckSince.erase(addr);
    // Its waiters were aborted at the cutover (or are bouncing on the
    // watchdog); un-stick anyone who re-requested meanwhile.
    abortPendingOn(addr);
}

} // namespace mcube
