#include "fault/fault_injector.hh"

#include <algorithm>

#include "core/system.hh"
#include "trace/trace_event.hh"

namespace mcube
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DropRequest:
        return "drop_request";
      case FaultKind::DropReply:
        return "drop_reply";
      case FaultKind::Delay:
        return "delay";
      case FaultKind::Duplicate:
        return "duplicate";
    }
    return "?";
}

FaultPlan
FaultPlan::dropRequests(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::DropRequest;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::dropReplies(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::DropReply;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::delays(double prob, Tick delay_ticks, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::Delay;
    s.prob = prob;
    s.delayTicks = delay_ticks;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::duplicates(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::Duplicate;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultInjector::FaultInjector(MulticubeSystem &sys, const FaultPlan &plan)
    : sys(sys), plan(plan), rng(plan.seed, 0x7f4au), stats("fault")
{
    states.resize(this->plan.specs.size());

    stats.addCounter("ops_seen", statSeen,
                     "ops offered to the fault hook");
    stats.addCounter("drop_request", statDropRequest,
                     "request ops dropped at enqueue");
    stats.addCounter("drop_reply", statDropReply,
                     "recoverable reply ops dropped at enqueue");
    stats.addCounter("delay", statDelay, "ops enqueued late");
    stats.addCounter("duplicate", statDuplicate,
                     "request ops enqueued twice");

    const unsigned n = sys.n();
    for (unsigned i = 0; i < n; ++i) {
        auto rh = std::make_unique<Hook>();
        rh->inj = this;
        rh->dim = 0;
        rh->index = static_cast<int>(i);
        sys.rowBus(i).setFaultHook(rh.get());
        hooks.push_back(std::move(rh));

        auto ch = std::make_unique<Hook>();
        ch->inj = this;
        ch->dim = 1;
        ch->index = static_cast<int>(i);
        sys.colBus(i).setFaultHook(ch.get());
        hooks.push_back(std::move(ch));
    }
}

FaultInjector::~FaultInjector()
{
    const unsigned n = sys.n();
    for (unsigned i = 0; i < n; ++i) {
        sys.rowBus(i).setFaultHook(nullptr);
        sys.colBus(i).setFaultHook(nullptr);
    }
}

std::uint64_t
FaultInjector::totalInjections() const
{
    return statDropRequest.value() + statDropReply.value()
         + statDelay.value() + statDuplicate.value();
}

bool
FaultInjector::eligible(FaultKind kind, const BusOp &op)
{
    switch (kind) {
      case FaultKind::DropRequest:
        return op.is(op::Request);
      case FaultKind::DropReply:
        // Only losses the watchdog can recover from: the reply either
        // carries no state (Fail), leaves the chain state intact
        // (SYNC Ack), or leaves memory valid to serve a retry
        // (READ NoPurge). A dropped ownership-transfer reply would
        // destroy the only copy of the line.
        return op.is(op::Reply)
            && (op.is(op::Fail)
                || (op.txn == TxnType::Sync && op.is(op::Ack)
                    && !op.hasData)
                || (op.txn == TxnType::Read && op.is(op::NoPurge)));
      case FaultKind::Delay:
        return true;
      case FaultKind::Duplicate:
        // A duplicated ALLOCATE request can elicit a dataless ack for
        // a transaction that no longer exists; unlike every other
        // spurious reply it cannot be parked back to memory, so the
        // line would be stranded nowhere.
        return op.is(op::Request) && op.txn != TxnType::Allocate;
    }
    return false;
}

bool
FaultInjector::specApplies(const FaultSpec &spec, SpecState &state,
                           const Hook &hook, const BusOp &op)
{
    if (spec.busDim >= 0 && spec.busDim != hook.dim)
        return false;
    if (spec.busIndex >= 0 && spec.busIndex != hook.index)
        return false;
    if (spec.txn && *spec.txn != op.txn)
        return false;
    if (!eligible(spec.kind, op))
        return false;

    Tick now = sys.eventQueue().now();
    if (now < spec.activeFrom || now > spec.activeUntil)
        return false;
    if (state.injections >= spec.maxInjections)
        return false;

    std::uint64_t match = state.matches++;
    bool fire;
    if (!spec.atMatches.empty()) {
        fire = std::find(spec.atMatches.begin(), spec.atMatches.end(),
                         match)
            != spec.atMatches.end();
    } else {
        fire = spec.prob > 0.0 && rng.chance(spec.prob);
    }
    if (fire)
        ++state.injections;
    return fire;
}

FaultAction
FaultInjector::decide(const Hook &hook, const BusOp &op)
{
    ++statSeen;
    FaultAction act;
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        const FaultSpec &spec = plan.specs[i];
        if (!specApplies(spec, states[i], hook, op))
            continue;
        MCUBE_TRACE((TraceEvent{
            sys.eventQueue().now(), TracePhase::FaultInject,
            TraceComp::Fault, op.txn, op.params,
            static_cast<std::uint32_t>(hook.dim * 256 + hook.index),
            op.origin, op.addr, op.reqSeq, op.serial,
            static_cast<std::int64_t>(spec.kind)}));
        switch (spec.kind) {
          case FaultKind::DropRequest:
            ++statDropRequest;
            act.drop = true;
            return act;  // a dropped op cannot also be delayed/duped
          case FaultKind::DropReply:
            ++statDropReply;
            act.drop = true;
            return act;
          case FaultKind::Delay:
            ++statDelay;
            act.delayTicks += spec.delayTicks;
            break;
          case FaultKind::Duplicate:
            ++statDuplicate;
            act.duplicate = true;
            break;
        }
    }
    return act;
}

FaultAction
FaultInjector::Hook::onEnqueue(const Bus &bus, const BusOp &op)
{
    (void)bus;
    return inj->decide(*this, op);
}

void
FaultInjector::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
