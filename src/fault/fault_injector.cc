#include "fault/fault_injector.hh"

#include <algorithm>

#include "core/system.hh"
#include "sim/profiler.hh"
#include "trace/trace_event.hh"

namespace mcube
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DropRequest:
        return "drop_request";
      case FaultKind::DropReply:
        return "drop_reply";
      case FaultKind::Delay:
        return "delay";
      case FaultKind::Duplicate:
        return "duplicate";
      case FaultKind::Outage:
        return "outage";
      case FaultKind::FailStopBus:
        return "fail_stop_bus";
      case FaultKind::FailStopNode:
        return "fail_stop_node";
      case FaultKind::FailStopMemory:
        return "fail_stop_memory";
    }
    return "?";
}

bool
faultKindFromString(const std::string &name, FaultKind &out)
{
    for (auto k : {FaultKind::DropRequest, FaultKind::DropReply,
                   FaultKind::Delay, FaultKind::Duplicate,
                   FaultKind::Outage, FaultKind::FailStopBus,
                   FaultKind::FailStopNode, FaultKind::FailStopMemory}) {
        if (name == toString(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

FaultPlan
FaultPlan::dropRequests(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::DropRequest;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::dropReplies(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::DropReply;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::delays(double prob, Tick delay_ticks, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::Delay;
    s.prob = prob;
    s.delayTicks = delay_ticks;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::duplicates(double prob, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::Duplicate;
    s.prob = prob;
    p.specs.push_back(s);
    return p;
}

FaultPlan
FaultPlan::outages(double prob, Tick outage_ticks, std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    FaultSpec s;
    s.kind = FaultKind::Outage;
    s.prob = prob;
    s.outageTicks = outage_ticks;
    p.specs.push_back(s);
    return p;
}

namespace
{

FaultPlan
singleFailStop(FaultKind kind, Tick at_tick, bool graceful)
{
    FaultPlan p;
    FaultSpec s;
    s.kind = kind;
    s.atTick = at_tick;
    s.graceful = graceful;
    p.specs.push_back(s);
    return p;
}

} // namespace

FaultPlan
FaultPlan::failStopBus(int dim, int index, Tick at_tick, bool graceful)
{
    FaultPlan p = singleFailStop(FaultKind::FailStopBus, at_tick,
                                 graceful);
    p.specs[0].busDim = dim;
    p.specs[0].busIndex = index;
    return p;
}

FaultPlan
FaultPlan::failStopNode(int node, Tick at_tick, bool graceful)
{
    FaultPlan p = singleFailStop(FaultKind::FailStopNode, at_tick,
                                 graceful);
    p.specs[0].targetNode = node;
    return p;
}

FaultPlan
FaultPlan::failStopMemory(int column, Tick at_tick, bool graceful)
{
    FaultPlan p = singleFailStop(FaultKind::FailStopMemory, at_tick,
                                 graceful);
    p.specs[0].busIndex = column;
    return p;
}

Json
toJson(const FaultSpec &spec)
{
    Json j = Json::object();
    j.set("kind", toString(spec.kind));
    j.set("prob", spec.prob);
    j.set("delay_ticks", spec.delayTicks);
    j.set("outage_ticks", spec.outageTicks);
    j.set("bus_dim", spec.busDim);
    j.set("bus_index", spec.busIndex);
    if (spec.txn)
        j.set("txn", toString(*spec.txn));
    if (!spec.atMatches.empty()) {
        Json a = Json::array();
        for (std::uint64_t m : spec.atMatches)
            a.push(m);
        j.set("at_matches", std::move(a));
    }
    if (spec.maxInjections != UINT64_MAX)
        j.set("max_injections", spec.maxInjections);
    if (spec.activeFrom != 0)
        j.set("active_from", spec.activeFrom);
    if (spec.activeUntil != maxTick)
        j.set("active_until", spec.activeUntil);
    if (spec.unsafe)
        j.set("unsafe", true);
    if (spec.targetNode >= 0)
        j.set("target_node", spec.targetNode);
    if (spec.atTick != 0)
        j.set("at_tick", spec.atTick);
    if (spec.graceful)
        j.set("graceful", true);
    return j;
}

Json
toJson(const FaultPlan &plan)
{
    Json j = Json::object();
    j.set("seed", plan.seed);
    Json specs = Json::array();
    for (const FaultSpec &s : plan.specs)
        specs.push(toJson(s));
    j.set("specs", std::move(specs));
    return j;
}

bool
faultSpecFromJson(const Json &j, FaultSpec &out)
{
    if (!j.isObject())
        return false;
    if (!faultKindFromString(j.str("kind"), out.kind))
        return false;
    out.prob = j.num("prob", 0.0);
    out.delayTicks = j.u64("delay_ticks", 2000);
    out.outageTicks = j.u64("outage_ticks", 20'000);
    out.busDim = static_cast<int>(j.i64("bus_dim", -1));
    out.busIndex = static_cast<int>(j.i64("bus_index", -1));
    out.txn.reset();
    if (j.has("txn")) {
        TxnType t;
        if (!txnTypeFromString(j.str("txn"), t))
            return false;
        out.txn = t;
    }
    out.atMatches.clear();
    const Json &am = j.at("at_matches");
    for (std::size_t i = 0; i < am.size(); ++i)
        out.atMatches.push_back(am.at(i).asU64());
    out.maxInjections = j.u64("max_injections", UINT64_MAX);
    out.activeFrom = j.u64("active_from", 0);
    out.activeUntil = j.u64("active_until", maxTick);
    out.unsafe = j.flag("unsafe", false);
    out.targetNode = static_cast<int>(j.i64("target_node", -1));
    out.atTick = j.u64("at_tick", 0);
    out.graceful = j.flag("graceful", false);
    return true;
}

bool
faultPlanFromJson(const Json &j, FaultPlan &out)
{
    if (!j.isObject())
        return false;
    out.seed = j.u64("seed", 1);
    out.specs.clear();
    const Json &specs = j.at("specs");
    if (!specs.isArray() && !specs.isNull())
        return false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        FaultSpec s;
        if (!faultSpecFromJson(specs.at(i), s))
            return false;
        out.specs.push_back(std::move(s));
    }
    return true;
}

std::string
faultPlanParseError(const Json &j)
{
    if (!j.isObject())
        return "fault plan is not a JSON object";
    const Json &specs = j.at("specs");
    if (!specs.isArray() && !specs.isNull())
        return "fault plan \"specs\" is not an array";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Json &sj = specs.at(i);
        std::string idx = "fault spec " + std::to_string(i);
        if (!sj.isObject())
            return idx + " is not a JSON object";
        FaultKind k;
        if (!faultKindFromString(sj.str("kind"), k))
            return idx + ": unknown fault kind \"" + sj.str("kind")
                 + "\"";
        if (sj.has("txn")) {
            TxnType t;
            if (!txnTypeFromString(sj.str("txn"), t))
                return idx + ": unknown transaction type \""
                     + sj.str("txn") + "\"";
        }
    }
    FaultPlan scratch;
    if (!faultPlanFromJson(j, scratch))
        return "fault plan does not parse";
    return "";
}

FaultInjector::FaultInjector(MulticubeSystem &sys, const FaultPlan &plan)
    : sys(sys), plan(plan), rng(plan.seed, 0x7f4au), stats("fault")
{
    states.resize(this->plan.specs.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        states[i].windowEnd.assign(2 * sys.n(), 0);
        states[i].schedule = this->plan.specs[i].atMatches;
        std::sort(states[i].schedule.begin(), states[i].schedule.end());
    }

    stats.addCounter("ops_seen", statSeen,
                     "ops offered to the fault hook");
    stats.addCounter("drop_request", statDropRequest,
                     "request ops dropped at enqueue");
    stats.addCounter("drop_reply", statDropReply,
                     "recoverable reply ops dropped at enqueue");
    stats.addCounter("delay", statDelay, "ops enqueued late");
    stats.addCounter("duplicate", statDuplicate,
                     "request ops enqueued twice");
    stats.addCounter("outage", statOutage, "outage windows opened");
    stats.addCounter("outage_drop", statOutageDrop,
                     "ops swallowed by an open outage window");
    stats.addCounter("outage_defer", statOutageDefer,
                     "ops deferred to the end of an outage window");

    const unsigned n = sys.n();
    for (unsigned i = 0; i < n; ++i) {
        auto rh = std::make_unique<Hook>();
        rh->inj = this;
        rh->dim = 0;
        rh->index = static_cast<int>(i);
        rh->hookId = static_cast<unsigned>(hooks.size());
        sys.rowBus(i).setFaultHook(rh.get());
        hooks.push_back(std::move(rh));

        auto ch = std::make_unique<Hook>();
        ch->inj = this;
        ch->dim = 1;
        ch->index = static_cast<int>(i);
        ch->hookId = static_cast<unsigned>(hooks.size());
        sys.colBus(i).setFaultHook(ch.get());
        hooks.push_back(std::move(ch));
    }
}

FaultInjector::~FaultInjector()
{
    const unsigned n = sys.n();
    for (unsigned i = 0; i < n; ++i) {
        sys.rowBus(i).setFaultHook(nullptr);
        sys.colBus(i).setFaultHook(nullptr);
    }
}

std::uint64_t
FaultInjector::totalInjections() const
{
    return statDropRequest.value() + statDropReply.value()
         + statDelay.value() + statDuplicate.value()
         + statOutage.value();
}

bool
FaultInjector::eligible(FaultKind kind, const BusOp &op)
{
    switch (kind) {
      case FaultKind::DropRequest:
        return op.is(op::Request);
      case FaultKind::DropReply:
        // Only losses the watchdog can recover from: the reply either
        // carries no state (Fail), leaves the chain state intact
        // (SYNC Ack), or leaves memory valid to serve a retry
        // (READ NoPurge). A dropped ownership-transfer reply would
        // destroy the only copy of the line.
        return op.is(op::Reply)
            && (op.is(op::Fail)
                || (op.txn == TxnType::Sync && op.is(op::Ack)
                    && !op.hasData)
                || (op.txn == TxnType::Read && op.is(op::NoPurge)));
      case FaultKind::Delay:
        return true;
      case FaultKind::Duplicate:
        // A duplicated ALLOCATE request can elicit a dataless ack for
        // a transaction that no longer exists; unlike every other
        // spurious reply it cannot be parked back to memory, so the
        // line would be stranded nowhere.
        return op.is(op::Request) && op.txn != TxnType::Allocate;
      case FaultKind::Outage:
        // Any op can *trigger* an outage window; what happens to the
        // ops arriving inside the window is decided per op (safe
        // drops vs. deferral) in decide().
        return true;
      case FaultKind::FailStopBus:
      case FaultKind::FailStopNode:
      case FaultKind::FailStopMemory:
        // Time-triggered, not op-triggered: the ReconfigurationManager
        // executes the kill at the spec's atTick. The enqueue hook
        // never fires these.
        return false;
    }
    return false;
}

bool
FaultInjector::eligibleUnsafe(FaultKind kind, const BusOp &op)
{
    switch (kind) {
      case FaultKind::DropRequest:
      case FaultKind::Duplicate:
        return op.is(op::Request);
      case FaultKind::DropReply:
        return op.is(op::Reply);
      case FaultKind::Delay:
      case FaultKind::Outage:
        return true;
      case FaultKind::FailStopBus:
      case FaultKind::FailStopNode:
      case FaultKind::FailStopMemory:
        return false;
    }
    return false;
}

bool
FaultInjector::specApplies(const FaultSpec &spec, SpecState &state,
                           const Hook &hook, const BusOp &op)
{
    if (spec.busDim >= 0 && spec.busDim != hook.dim)
        return false;
    if (spec.busIndex >= 0 && spec.busIndex != hook.index)
        return false;
    if (spec.txn && *spec.txn != op.txn)
        return false;
    if (spec.unsafe ? !eligibleUnsafe(spec.kind, op)
                    : !eligible(spec.kind, op))
        return false;

    Tick now = sys.eventQueue().now();
    if (now < spec.activeFrom || now > spec.activeUntil)
        return false;
    if (state.injections >= spec.maxInjections)
        return false;

    std::uint64_t match = state.matches++;
    bool fire;
    if (!state.schedule.empty()) {
        fire = std::binary_search(state.schedule.begin(),
                                  state.schedule.end(), match);
    } else {
        fire = spec.prob > 0.0 && rng.chance(spec.prob);
    }
    if (fire) {
        ++state.injections;
        // Record where we fired so a probabilistic spec can later be
        // frozen into an explicit atMatches schedule (repro shrinking).
        if (state.firedAt.size() < 65536)
            state.firedAt.push_back(match);
    }
    return fire;
}

FaultAction
FaultInjector::decide(const Hook &hook, const BusOp &op)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Fault, 0, {});
    ++statSeen;
    FaultAction act;
    const Tick now = sys.eventQueue().now();

    // Open outage windows first: while this bus is down nothing new
    // gets on the wire. Ops the protocol can recover from losing are
    // swallowed; anything else is deferred to the window's end,
    // modelling sender hardware retrying until the bus answers.
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        const FaultSpec &spec = plan.specs[i];
        if (spec.kind != FaultKind::Outage)
            continue;
        Tick end = states[i].windowEnd[hook.hookId];
        if (now >= end)
            continue;
        if (spec.unsafe || eligible(FaultKind::DropRequest, op)
            || eligible(FaultKind::DropReply, op)) {
            ++statOutageDrop;
            act.drop = true;
            return act;
        }
        ++statOutageDefer;
        act.delayTicks += end - now;
    }

    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        const FaultSpec &spec = plan.specs[i];
        if (!specApplies(spec, states[i], hook, op))
            continue;
        MCUBE_TRACE((TraceEvent{
            sys.eventQueue().now(), TracePhase::FaultInject,
            TraceComp::Fault, op.txn, op.params,
            static_cast<std::uint32_t>(hook.dim * 256 + hook.index),
            op.origin, op.addr, op.reqSeq, op.serial,
            static_cast<std::int64_t>(spec.kind)}));
        switch (spec.kind) {
          case FaultKind::DropRequest:
            ++statDropRequest;
            act.drop = true;
            return act;  // a dropped op cannot also be delayed/duped
          case FaultKind::DropReply:
            ++statDropReply;
            act.drop = true;
            return act;
          case FaultKind::Delay:
            ++statDelay;
            act.delayTicks += spec.delayTicks;
            break;
          case FaultKind::Duplicate:
            ++statDuplicate;
            act.duplicate = true;
            break;
          case FaultKind::Outage:
            ++statOutage;
            states[i].windowEnd[hook.hookId] = now + spec.outageTicks;
            // The triggering op is the window's first casualty.
            if (spec.unsafe || eligible(FaultKind::DropRequest, op)
                || eligible(FaultKind::DropReply, op)) {
                ++statOutageDrop;
                act.drop = true;
                return act;
            }
            ++statOutageDefer;
            act.delayTicks += spec.outageTicks;
            break;
          case FaultKind::FailStopBus:
          case FaultKind::FailStopNode:
          case FaultKind::FailStopMemory:
            // Never reached: eligible() rejects fail-stop kinds, so
            // specApplies() cannot fire them from the enqueue hook.
            break;
        }
    }
    return act;
}

FaultAction
FaultInjector::Hook::onEnqueue(const Bus &bus, const BusOp &op)
{
    (void)bus;
    return inj->decide(*this, op);
}

void
FaultInjector::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
