#include "mem/memory_module.hh"

#include <cassert>
#include <utility>

#include "sim/log.hh"
#include "sim/profiler.hh"
#include "trace/trace_event.hh"

namespace mcube
{

MemoryModule::MemoryModule(std::string name, EventQueue &eq,
                           const GridMap &grid, unsigned column,
                           const MemoryParams &params)
    : name(std::move(name)), eq(eq), grid(grid), column(column),
      params(params), stats(this->name)
{
    stats.addCounter("reads_served", statReads,
                     "valid lines supplied to requests");
    stats.addCounter("updates", statUpdates, "lines written back");
    stats.addCounter("bounces", statBounces,
                     "requests for invalid lines reissued");
    stats.addCounter("tset_fails", statTsetFails,
                     "test-and-set failures answered from memory");
    stats.addCounter("bounce_chains_peak", statBounceChainPeak,
                     "high-water live bounce-chain entries");
    stats.addHistogram("bounce_chain_hist", statBounceChain,
                       "bounces a request suffered before service");
}

void
MemoryModule::connect(Bus &column_bus)
{
    assert(!bus);
    bus = &column_bus;
    slot = bus->attach(this);
}

MemoryModule::MemLine &
MemoryModule::lineOf(Addr addr)
{
    assert(grid.homeColumn(addr) == column);
    return store.ref(addr);  // default: valid, token 0
}

const MemoryModule::MemLine &
MemoryModule::lineOfConst(Addr addr) const
{
    assert(grid.homeColumn(addr) == column);
    return store.ref(addr);
}

bool
MemoryModule::lineValid(Addr addr) const
{
    return lineOfConst(addr).valid;
}

LineData
MemoryModule::lineData(Addr addr) const
{
    return lineOfConst(addr).data;
}

void
MemoryModule::poke(Addr addr, const LineData &data, bool valid)
{
    MemLine &l = lineOf(addr);
    l.data = data;
    l.valid = valid;
}

void
MemoryModule::respond(BusOp op)
{
    assert(bus);
    Tick start = std::max(eq.now(), busyUntil);
    busyUntil = start + params.accessTicks;
    // Responses racing a fail-stop die inside the dead module, before
    // they reach the (possibly still live) column bus.
    eq.schedule(busyUntil, [this, op] {
        if (!dead_)
            bus->request(slot, op);
    });
}

void
MemoryModule::failStop()
{
    if (dead_)
        return;
    dead_ = true;
    MCUBE_LOG(LogCat::Mem, eq.now(), name << " FAIL-STOP");
}

void
MemoryModule::snoop(const BusOp &op, bool modified_signal)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Memory, column, {});
    (void)modified_signal;

    if (dead_)
        return;

    // Memory-update operations (unstarred controllers also see these;
    // the starred "write memory line and mark line valid" happens
    // here).
    bool write_update =
        (op.txn == TxnType::WriteBack && op.is(op::Update)
         && op.is(op::Memory))
        || (op.txn == TxnType::Read && op.is(op::Reply) && op.is(op::Update)
            && op.is(op::Memory))
        || (op.txn == TxnType::Read && op.is(op::Update) && op.is(op::Memory)
            && !op.is(op::Reply));
    if (write_update) {
        assert(op.hasData);
        MemLine &l = lineOf(op.addr);
        l.data = op.data;
        l.valid = true;
        ++statUpdates;
        MCUBE_LOG(LogCat::Mem, eq.now(),
                  name << " update addr=" << op.addr
                       << " tok=" << op.data.token);
        MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MemUpdate,
                                TraceComp::Memory, op.txn, op.params,
                                column, op.origin, op.addr, op.reqSeq,
                                op.serial, 0}));
        return;
    }

    if (op.is(op::Request) && op.is(op::Memory))
        serveRequest(op);
}

void
MemoryModule::serveRequest(const BusOp &req)
{
    MemLine &l = lineOf(req.addr);

    // Invalid line: the correct copy is in some cache. Appendix A:
    // reissue the request on the column as (REQUEST, REMOVE); if the
    // modified copy is in this column it responds, otherwise the
    // controller on the originator's row re-launches the whole
    // request on its row bus.
    if (!l.valid) {
        BusOp bounce = req;
        bounce.params = op::Request | op::Remove;
        bounce.sender = invalidNode;
        bounce.hasData = false;
        ++statBounces;
        unsigned &chain = bounceChains.ref({req.origin, req.addr});
        ++chain;
        statBounceChainPeak.set(
            static_cast<std::uint64_t>(bounceChains.highWater()));
        MCUBE_LOG(LogCat::Mem, eq.now(),
                  name << " bounce " << toString(req));
        MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MemBounce,
                                TraceComp::Memory, req.txn, req.params,
                                column, req.origin, req.addr,
                                req.reqSeq, req.serial,
                                static_cast<std::int64_t>(chain)}));
        respond(bounce);
        return;
    }

    // Served: close out any bounce chain this request instance ran up.
    // (Guarded so the common no-bounce case costs one empty() check.)
    std::int64_t chain_len = 0;
    if (!bounceChains.empty()) {
        if (const unsigned *chain =
                bounceChains.find({req.origin, req.addr})) {
            chain_len = *chain;
            statBounceChain.sample(static_cast<double>(*chain));
            bounceChains.erase({req.origin, req.addr});
        }
    }
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MemServe,
                            TraceComp::Memory, req.txn, req.params,
                            column, req.origin, req.addr, req.reqSeq,
                            req.serial, chain_len}));

    switch (req.txn) {
      case TxnType::Read: {
        BusOp reply = req;
        reply.params = op::Reply | op::NoPurge;
        reply.sender = invalidNode;
        reply.hasData = true;
        reply.data = l.data;
        ++statReads;
        respond(reply);
        break;
      }
      case TxnType::ReadMod:
      case TxnType::Allocate: {
        // Give the line to the requester and broadcast the purge.
        // ALLOCATE returns an acknowledge instead of data (Section 3).
        BusOp reply = req;
        reply.params = op::Reply | op::Purge;
        reply.sender = invalidNode;
        if (req.txn == TxnType::Allocate) {
            reply.params |= op::Ack;
            reply.hasData = false;
        } else {
            reply.hasData = true;
        }
        reply.data = l.data;
        reply.data.next = invalidNode;  // queue links never leave a node
        l.valid = false;
        ++statReads;
        respond(reply);
        break;
      }
      case TxnType::Tset:
      case TxnType::Sync: {
        // Section 4: executed "in memory if unmodified". Success
        // moves the line (lock now held) to the requester exactly
        // like a READ-MOD; failure returns only the notification.
        if (l.data.lock == 0) {
            BusOp reply = req;
            reply.params = op::Reply | op::Purge;
            reply.sender = invalidNode;
            reply.hasData = true;
            reply.data = l.data;
            reply.data.lock = 1;
            reply.data.next = invalidNode;
            l.valid = false;
            ++statReads;
            respond(reply);
        } else {
            BusOp reply = req;
            reply.params = op::Reply | op::Fail;
            reply.sender = invalidNode;
            reply.hasData = false;
            ++statTsetFails;
            respond(reply);
        }
        break;
      }
      case TxnType::WriteBack:
        assert(false && "WRITEBACK carries no (REQUEST, MEMORY) op");
        break;
    }
}

void
MemoryModule::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
