/**
 * @file
 * A main-memory module on one column bus.
 *
 * Section 3: "Main memory is located on the columns, interleaved by
 * lines ... a single tag bit is associated with each line in main
 * memory indicating whether the contents are valid or invalid, that
 * is, modified. This bit is necessary to prevent a request from
 * acquiring stale data from memory while the modified line tables are
 * in an inconsistent state."
 *
 * The module implements exactly the starred lines of Appendix A: it
 * serves valid lines, bounces requests for invalid lines back onto
 * the column as (REQUEST, REMOVE) operations — the robustness that
 * lets mis-routed or dropped requests retry — and absorbs UPDATE
 * operations. The Section 4 test-and-set / SYNC primitives execute
 * "in memory if unmodified", which is also handled here.
 *
 * Timing: a simple FIFO service model with a fixed access latency
 * (paper: 750 ns); back-to-back requests serialise.
 */

#ifndef MCUBE_MEM_MEMORY_MODULE_HH
#define MCUBE_MEM_MEMORY_MODULE_HH

#include <cstdint>
#include <string>
#include <utility>

#include "bus/bus.hh"
#include "bus/bus_op.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "topology/grid_map.hh"

namespace mcube
{

/** Timing parameters of a memory module. */
struct MemoryParams
{
    Tick accessTicks = 750;  //!< DRAM access latency (paper: 750 ns)
};

/** Main memory for the lines homed on one column. */
class MemoryModule : public BusAgent
{
  public:
    /**
     * @param name Instance name.
     * @param eq Shared event queue.
     * @param grid Grid geometry (for home-column assertions).
     * @param column The column this module serves.
     * @param params Timing parameters.
     */
    MemoryModule(std::string name, EventQueue &eq, const GridMap &grid,
                 unsigned column, const MemoryParams &params);

    /** Attach to the column bus. Must be called exactly once. */
    void connect(Bus &column_bus);

    void snoop(const BusOp &op, bool modified_signal) override;

    /** @{ Storage inspection/poking for tests and the checker. */
    bool lineValid(Addr addr) const;
    LineData lineData(Addr addr) const;
    void poke(Addr addr, const LineData &data, bool valid);
    /** @} */

    /**
     * Fail-stop this module permanently (docs/ROBUSTNESS.md): it stops
     * snooping — write-backs to it vanish, requests for its lines go
     * unanswered until the ReconfigurationManager quarantines the
     * column's address range. Pending responses are suppressed.
     */
    void failStop();

    /** True once failStop() was called. */
    bool dead() const { return dead_; }

    std::uint64_t readsServed() const { return statReads.value(); }
    std::uint64_t updates() const { return statUpdates.value(); }
    std::uint64_t bounces() const { return statBounces.value(); }

    void regStats(StatGroup &parent);

  private:
    struct MemLine
    {
        LineData data{};
        bool valid = true;  //!< memory copy is current
    };

    /** Fetch-or-create the backing line (memory owns all lines
     *  initially, with token 0 and valid bit set). */
    MemLine &lineOf(Addr addr);
    const MemLine &lineOfConst(Addr addr) const;

    /** Issue @p op on the column bus after the service latency. */
    void respond(BusOp op);

    /** Handle a (REQUEST, MEMORY) op of any transaction type. */
    void serveRequest(const BusOp &op);

    std::string name;
    EventQueue &eq;
    const GridMap &grid;
    unsigned column;
    MemoryParams params;

    Bus *bus = nullptr;
    unsigned slot = 0;
    Tick busyUntil = 0;
    bool dead_ = false;  //!< failStop() latch; never cleared

    mutable FlatMap<Addr, MemLine> store;

    /** Consecutive bounces per live (originator, addr) request
     *  instance; sampled into the chain-length histogram (and erased)
     *  when the request is finally served. */
    FlatMap<std::pair<NodeId, Addr>, unsigned> bounceChains;

    Counter statReads;
    Counter statUpdates;
    Counter statBounces;
    Counter statTsetFails;
    Counter statBounceChainPeak;
    Histogram statBounceChain;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_MEM_MEMORY_MODULE_HH
