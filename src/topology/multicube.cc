#include "topology/multicube.hh"

#include <cassert>

namespace mcube
{

namespace
{

std::uint64_t
ipow(std::uint64_t base, unsigned exp)
{
    std::uint64_t r = 1;
    while (exp--)
        r *= base;
    return r;
}

} // namespace

MulticubeTopology::MulticubeTopology(unsigned n, unsigned k)
    : _n(n), _k(k), _num_procs(ipow(n, k))
{
    assert(n >= 1 && k >= 1);
}

std::uint64_t
MulticubeTopology::numBuses() const
{
    return static_cast<std::uint64_t>(_k) * ipow(_n, _k - 1);
}

double
MulticubeTopology::bandwidthPerProcessor() const
{
    return static_cast<double>(_k) / static_cast<double>(_n);
}

std::uint64_t
MulticubeTopology::invalidationBusOps() const
{
    if (_k == 1)
        return 1;  // a single-bus invalidate is one broadcast
    if (_k == 2)
        return static_cast<std::uint64_t>(_n) + 1 + 3;  // Section 6
    // General form from Section 6: approximately (N-1)/(n-1)
    // operations to reach every node, plus the 3 column-style ops of
    // the initiating path.
    return (_num_procs - 1) / (_n - 1) + 3;
}

std::vector<unsigned>
MulticubeTopology::coordinates(std::uint64_t proc) const
{
    assert(proc < _num_procs);
    std::vector<unsigned> c(_k);
    for (unsigned d = 0; d < _k; ++d) {
        c[d] = static_cast<unsigned>(proc % _n);
        proc /= _n;
    }
    return c;
}

std::uint64_t
MulticubeTopology::procAt(const std::vector<unsigned> &coords) const
{
    assert(coords.size() == _k);
    std::uint64_t id = 0;
    for (unsigned d = _k; d-- > 0;) {
        assert(coords[d] < _n);
        id = id * _n + coords[d];
    }
    return id;
}

std::vector<std::uint64_t>
MulticubeTopology::busMembers(std::uint64_t proc, unsigned dim) const
{
    assert(dim < _k);
    std::vector<unsigned> c = coordinates(proc);
    std::vector<std::uint64_t> members;
    members.reserve(_n);
    for (unsigned v = 0; v < _n; ++v) {
        c[dim] = v;
        members.push_back(procAt(c));
    }
    return members;
}

} // namespace mcube
