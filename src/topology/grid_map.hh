/**
 * @file
 * Coordinate and home-column mapping for the 2-D Wisconsin Multicube.
 *
 * Nodes live on an n x n grid; node id = row * n + column. Main memory
 * is interleaved across the column buses by line address, so every
 * line has a home column (Section 3).
 */

#ifndef MCUBE_TOPOLOGY_GRID_MAP_HH
#define MCUBE_TOPOLOGY_GRID_MAP_HH

#include <cassert>

#include "sim/types.hh"

namespace mcube
{

/**
 * Geometry of the n x n grid and the home mapping. Section 3: memory
 * is "interleaved by lines or pages"; @p page_shift selects the
 * granularity (0 = by line, p = by 2^p-line pages).
 */
class GridMap
{
  public:
    explicit
    GridMap(unsigned n, unsigned page_shift = 0)
        : _n(n), pageShift(page_shift)
    {
        assert(n >= 1);
    }

    /** Processors per bus (and buses per dimension). */
    unsigned n() const { return _n; }

    /** Total processors. */
    unsigned numNodes() const { return _n * _n; }

    unsigned rowOf(NodeId id) const { return id / _n; }
    unsigned colOf(NodeId id) const { return id % _n; }

    NodeId
    nodeAt(unsigned row, unsigned col) const
    {
        assert(row < _n && col < _n);
        return row * _n + col;
    }

    /** Home column of a line (line- or page-interleaved). */
    unsigned
    homeColumn(Addr addr) const
    {
        return static_cast<unsigned>((addr >> pageShift) % _n);
    }

    bool
    sameRow(NodeId a, NodeId b) const
    {
        return rowOf(a) == rowOf(b);
    }

    bool
    sameColumn(NodeId a, NodeId b) const
    {
        return colOf(a) == colOf(b);
    }

  private:
    unsigned _n;
    unsigned pageShift;
};

} // namespace mcube

#endif // MCUBE_TOPOLOGY_GRID_MAP_HH
