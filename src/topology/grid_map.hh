/**
 * @file
 * Coordinate and home-column mapping for the 2-D Wisconsin Multicube.
 *
 * Nodes live on an n x n grid; node id = row * n + column. Main memory
 * is interleaved across the column buses by line address, so every
 * line has a home column (Section 3).
 */

#ifndef MCUBE_TOPOLOGY_GRID_MAP_HH
#define MCUBE_TOPOLOGY_GRID_MAP_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mcube
{

/**
 * Geometry of the n x n grid and the home mapping. Section 3: memory
 * is "interleaved by lines or pages"; @p page_shift selects the
 * granularity (0 = by line, p = by 2^p-line pages).
 */
class GridMap
{
  public:
    explicit
    GridMap(unsigned n, unsigned page_shift = 0)
        : _n(n), pageShift(page_shift)
    {
        assert(n >= 1);
        // Coordinate splits run once per delivered op per attached
        // agent; for power-of-two n (every benchmarked size) replace
        // the integer divisions with shift/mask.
        if ((n & (n - 1)) == 0) {
            mask = n - 1;
            while ((1u << shift) < n)
                ++shift;
        }
    }

    /** Processors per bus (and buses per dimension). */
    unsigned n() const { return _n; }

    /** Total processors. */
    unsigned numNodes() const { return _n * _n; }

    unsigned
    rowOf(NodeId id) const
    {
        return mask ? id >> shift : id / _n;
    }

    unsigned
    colOf(NodeId id) const
    {
        return mask ? (id & mask) : id % _n;
    }

    NodeId
    nodeAt(unsigned row, unsigned col) const
    {
        assert(row < _n && col < _n);
        return row * _n + col;
    }

    /** Home column of a line (line- or page-interleaved). */
    unsigned
    homeColumn(Addr addr) const
    {
        Addr page = addr >> pageShift;
        return static_cast<unsigned>(mask ? (page & mask) : page % _n);
    }

    bool
    sameRow(NodeId a, NodeId b) const
    {
        return rowOf(a) == rowOf(b);
    }

    bool
    sameColumn(NodeId a, NodeId b) const
    {
        return colOf(a) == colOf(b);
    }

    /** @{ Degraded-mode topology (docs/ROBUSTNESS.md): nodes retired
     *  by a fail-stop reconfiguration are marked unreachable. The map
     *  stays allocation-free until the first kill, so the healthy
     *  fast path is untouched. */
    void
    markUnreachable(NodeId id)
    {
        if (dead.empty())
            dead.assign(numNodes(), 0);
        assert(id < numNodes());
        dead[id] = 1;
    }

    bool
    reachable(NodeId id) const
    {
        return dead.empty() || !dead[id];
    }

    bool anyUnreachable() const { return !dead.empty(); }
    /** @} */

  private:
    unsigned _n;
    unsigned pageShift;
    unsigned mask = 0;   //!< n - 1 when n is a power of two, else 0
    unsigned shift = 0;  //!< log2(n) when n is a power of two
    std::vector<std::uint8_t> dead{};  //!< lazily sized to numNodes()
};

} // namespace mcube

#endif // MCUBE_TOPOLOGY_GRID_MAP_HH
