/**
 * @file
 * The general Multicube topology (Section 6).
 *
 * A Multicube has N = n^k processors; each processor sits on k buses
 * and each bus carries n processors. k = 1 is a multi (single bus),
 * n = 2 is a hypercube, and the Wisconsin Multicube is k = 2. These
 * helpers compute the structural and scaling properties the paper
 * derives: bus counts, per-processor bandwidth k/n, the broadcast
 * (invalidation) cost of roughly (N-1)/(n-1) bus operations, and
 * coordinate arithmetic for arbitrary k.
 */

#ifndef MCUBE_TOPOLOGY_MULTICUBE_HH
#define MCUBE_TOPOLOGY_MULTICUBE_HH

#include <cstdint>
#include <vector>

namespace mcube
{

/** Structural description of an n^k Multicube. */
class MulticubeTopology
{
  public:
    /**
     * @param n Processors per bus (>= 1).
     * @param k Dimensions / buses per processor (>= 1).
     */
    MulticubeTopology(unsigned n, unsigned k);

    unsigned n() const { return _n; }
    unsigned k() const { return _k; }

    /** N = n^k. */
    std::uint64_t numProcessors() const { return _num_procs; }

    /** Total buses: k * n^(k-1). */
    std::uint64_t numBuses() const;

    /** Buses snooped per processor (= k). */
    unsigned busesPerProcessor() const { return _k; }

    /** Relative bandwidth per processor: k / n (Section 6). */
    double bandwidthPerProcessor() const;

    /**
     * Bus operations for a full invalidation broadcast. In the 2-D
     * machine this is (n + 1) row ops + 3 column ops (Section 6); the
     * general form the paper gives is approximately (N-1)/(n-1).
     */
    std::uint64_t invalidationBusOps() const;

    /**
     * Expected bus hops for a request/response pair in the common
     * (non-broadcast) case: a request reaches any node through at
     * most k buses, so a round trip costs up to 2k operations —
     * "twice the number of bus operations required of a single-bus
     * multi" for k = 2.
     */
    unsigned maxRequestHops() const { return 2 * _k; }

    /** True if this instance is a multi (k = 1). */
    bool isMulti() const { return _k == 1; }

    /** True if this instance is a hypercube (n = 2). */
    bool isHypercube() const { return _n == 2; }

    /** Decompose a processor id into k bus coordinates (base n). */
    std::vector<unsigned> coordinates(std::uint64_t proc) const;

    /** Recompose coordinates into a processor id. */
    std::uint64_t procAt(const std::vector<unsigned> &coords) const;

    /**
     * Ids of the processors sharing the bus along @p dim that passes
     * through @p proc (including @p proc itself).
     */
    std::vector<std::uint64_t> busMembers(std::uint64_t proc,
                                          unsigned dim) const;

  private:
    unsigned _n;
    unsigned _k;
    std::uint64_t _num_procs;
};

} // namespace mcube

#endif // MCUBE_TOPOLOGY_MULTICUBE_HH
