/**
 * @file
 * Approximate MVA for the general n^k Multicube (Section 6).
 *
 * Section 6 argues: per-processor bus bandwidth is k/n, growing with
 * k "precisely the rate at which the normal path length grows", while
 * invalidation broadcasts scale less favourably at ~ (N-1)/(n-1)
 * operations; hence higher dimensions trade broadcast cost against
 * bandwidth, "a subject for future research". This model makes that
 * trade-off quantitative.
 *
 * Machine: N = n^k processors, k dimensions, n^(k-1) buses per
 * dimension. A (non-broadcast) transaction performs one short request
 * op and one data op per dimension on its path (up to k of each way);
 * a write miss to unmodified data additionally broadcasts
 * ~ (N-1)/(n-1) short invalidation ops spread uniformly over all
 * buses. All dimensions are symmetric, so one queueing centre with
 * per-bus demand D = (total occupancy per transaction)/(k n^(k-1))
 * suffices; the closed-network fixed point is solved by bisection as
 * in MvaModel.
 *
 * For k = 2 this model is a symmetrised approximation of MvaModel
 * (it ignores the row/column asymmetry of memory placement); tests
 * check they agree to within a few percent.
 */

#ifndef MCUBE_MVA_MVA_MULTIK_HH
#define MCUBE_MVA_MVA_MULTIK_HH

#include "mva/mva_model.hh"

namespace mcube
{

/** Inputs for the general-k model. */
struct MultiKParams
{
    unsigned n = 32;  //!< processors per bus
    unsigned k = 2;   //!< dimensions (buses per processor)
    double requestsPerMs = 25.0;

    double fracReadUnmod = 0.60;
    double fracReadMod = 0.15;
    double fracWriteUnmod = 0.20;
    double fracWriteMod = 0.05;

    unsigned blockWords = 16;
    double wordTimeNs = 50.0;
    double headerTimeNs = 50.0;
    double memoryLatencyNs = 750.0;
    double cacheLatencyNs = 750.0;
};

/** Outputs (shared shape with the 2-D model). */
struct MultiKResult
{
    double efficiency = 0.0;
    double cycleTimeNs = 0.0;
    double responseTimeNs = 0.0;
    double busUtilization = 0.0;     //!< per bus (all symmetric)
    double throughputPerProc = 0.0;  //!< transactions per ns
};

/** Solver. */
class MultiKMvaModel
{
  public:
    explicit MultiKMvaModel(const MultiKParams &params)
        : params(params)
    {
    }

    MultiKResult solve() const;

    /** Total bus occupancy per transaction (ns, all buses). */
    double totalDemandPerTxn() const;

    /** Expected bus ops per transaction (incl. broadcast share). */
    double opsPerTxn() const;

    /** Unloaded critical-path latency (ns). */
    double rawLatency() const;

    /** Broadcast cost in bus operations: ~ (N-1)/(n-1). */
    double invalidationOps() const;

  private:
    double dataOpTime() const;

    MultiKParams params;
};

} // namespace mcube

#endif // MCUBE_MVA_MVA_MULTIK_HH
