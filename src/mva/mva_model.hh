/**
 * @file
 * Approximate mean-value analysis of the Wisconsin Multicube,
 * reimplementing the style of model the paper's evaluation uses
 * (Leutenegger & Vernon [LeVe88] — the original implementation was
 * never published, so the visit counts and service demands here are
 * derived directly from the Section 3 / Appendix A protocol; see
 * DESIGN.md for the substitution note).
 *
 * Model: a closed queueing network with N = n^2 customers
 * (processors). Each customer cycles through
 *
 *   think (mean 1/request-rate)  ->  one bus transaction
 *
 * where a transaction is a protocol-defined sequence of row-bus and
 * column-bus operations plus fixed memory / snooping-cache latencies.
 * The 2n buses are FIFO queueing centers; by symmetry every row bus
 * carries the same load, so Schweitzer approximate MVA over one row
 * center and one column center (with per-bus demands = total demand
 * divided by n) suffices. Bus operations that are off the critical
 * path (memory-update writes, the short purge broadcasts on remote
 * rows) contribute queueing load but not response time, matching the
 * paper's observation that "all of these operations are very short".
 *
 * Efficiency is the paper's metric: think / cycle, i.e. the speedup
 * relative to a machine with no bus or memory latency.
 */

#ifndef MCUBE_MVA_MVA_MODEL_HH
#define MCUBE_MVA_MVA_MODEL_HH

namespace mcube
{

/** Section 5 latency-reduction techniques (modelled variants). */
enum class LatencyTechnique
{
    None,               //!< full block on both legs
    RequestedWordFirst, //!< second leg unblocks after the first word
    CutThrough,         //!< first leg forwarded as words arrive
    Both,               //!< both techniques combined
};

/** Inputs to the model (defaults = Figure 2 caption). */
struct MvaParams
{
    unsigned n = 32;              //!< processors per row (N = n^2)
    double requestsPerMs = 25.0;  //!< bus transactions per ms per proc

    /** Class mix. The Figure 2 caption gives P(unmodified) = 0.8 and
     *  P(invalidation write miss) = 0.2. */
    double fracReadUnmod = 0.60;
    double fracReadMod = 0.15;
    double fracWriteUnmod = 0.20;  //!< invalidation broadcasts
    double fracWriteMod = 0.05;

    unsigned blockWords = 16;   //!< words per transfer/coherency block
    double wordTimeNs = 50.0;   //!< bus word time (paper: 50 ns)
    double headerTimeNs = 50.0; //!< address/command op duration
    double memoryLatencyNs = 750.0;   //!< main memory access
    double cacheLatencyNs = 750.0;    //!< snooping (DRAM) cache access

    LatencyTechnique technique = LatencyTechnique::None;

    /** Split data transfers into fixed-size pieces of this many words
     *  (0 = off). Section 5's "send the requested line in small
     *  fixed-size pieces". */
    unsigned pieceWords = 0;

    /**
     * Fraction of reads to unmodified data satisfied by the
     * home-column controller's own cache (Section 6: such reads "are
     * likely to be satisfied by some cache along the path to
     * memory"): 2 row ops, no column traffic, snooping-cache latency.
     */
    double pHomeCacheHit = 0.0;
};

/** Outputs of one model solution. */
struct MvaResult
{
    double efficiency = 0.0;      //!< think / cycle (paper's metric)
    double cycleTimeNs = 0.0;     //!< mean think + response time
    double responseTimeNs = 0.0;  //!< mean transaction time
    double rowUtilization = 0.0;  //!< per row bus
    double colUtilization = 0.0;  //!< per column bus
    double throughputPerProc = 0.0;  //!< transactions per ns
    unsigned iterations = 0;      //!< AMVA iterations to converge
};

/** Solver for the Multicube closed network. */
class MvaModel
{
  public:
    explicit MvaModel(const MvaParams &params) : params(params) {}

    /** Solve by Schweitzer fixed-point iteration. */
    MvaResult solve() const;

    /** Expected row/column bus busy time per transaction (ns),
     *  exposed for tests and the busops bench. */
    double rowDemandPerTxn() const;
    double colDemandPerTxn() const;

    /** Zero-queueing transaction latency (ns), critical path only. */
    double rawLatency() const;

  private:
    /** Duration of a data-carrying op on the wire (occupancy). */
    double dataOpTime() const;
    /** Critical-path latency contribution of a data op on the first
     *  (forwarded) leg and on the final leg, per the technique. */
    double dataLegLatencyFirst() const;
    double dataLegLatencyFinal() const;

    MvaParams params;
};

} // namespace mcube

#endif // MCUBE_MVA_MVA_MODEL_HH
