#include "mva/mva_multik.hh"

#include <algorithm>
#include <cmath>

namespace mcube
{

double
MultiKMvaModel::dataOpTime() const
{
    return params.headerTimeNs
         + static_cast<double>(params.blockWords) * params.wordTimeNs;
}

double
MultiKMvaModel::invalidationOps() const
{
    double N = std::pow(static_cast<double>(params.n), params.k);
    if (params.n <= 1)
        return 1.0;
    return (N - 1.0) / (params.n - 1.0);
}

double
MultiKMvaModel::totalDemandPerTxn() const
{
    const double sh = params.headerTimeNs;
    const double sd = dataOpTime();
    const double k = params.k;

    // Non-broadcast path: one request header and one data reply per
    // dimension; writes add one table-maintenance header.
    double base = k * (sh + sd);
    double ru = base;
    double rm = base + sd;        // memory update leg
    double wu = base + sh + invalidationOps() * sh;
    double wm = base + sh;

    return params.fracReadUnmod * ru + params.fracReadMod * rm
         + params.fracWriteUnmod * wu + params.fracWriteMod * wm;
}

double
MultiKMvaModel::opsPerTxn() const
{
    const double k = params.k;
    double base = 2.0 * k;
    double ru = base;
    double rm = base + 1.0;
    double wu = base + 1.0 + invalidationOps();
    double wm = base + 1.0;
    return params.fracReadUnmod * ru + params.fracReadMod * rm
         + params.fracWriteUnmod * wu + params.fracWriteMod * wm;
}

double
MultiKMvaModel::rawLatency() const
{
    const double sh = params.headerTimeNs;
    const double sd = dataOpTime();
    double p_unmod = params.fracReadUnmod + params.fracWriteUnmod;
    double fixed = p_unmod * params.memoryLatencyNs
                 + (1.0 - p_unmod) * params.cacheLatencyNs;
    return params.k * sh + params.k * sd + fixed;
}

MultiKResult
MultiKMvaModel::solve() const
{
    MultiKResult res;
    double mix = params.fracReadUnmod + params.fracReadMod
               + params.fracWriteUnmod + params.fracWriteMod;
    if (mix < 0.999 || mix > 1.001)
        return res;

    const double n = params.n;
    const double k = params.k;
    const double N = std::pow(n, k);
    const double buses = k * std::pow(n, k - 1.0);
    const double Z = 1e6 / params.requestsPerMs;

    const double total = totalDemandPerTxn();
    const double d_bus = total / buses;           // per specific bus
    const double sbar = total / opsPerTxn();      // mean op service
    const double raw = rawLatency();
    const double crit_visits = 2.0 * k;           // queued hops
    const double corr = (N - 1.0) / N;

    auto waits = [&](double cycle) {
        double x_sys = N / cycle;
        double u = std::min(x_sys * d_bus, 0.999999);
        double w = u * corr * sbar
                 / std::max(1e-9, 1.0 - u * corr);
        return crit_visits * w;
    };

    double lo = Z + raw;
    double hi = lo;
    while (Z + raw + waits(hi) > hi)
        hi *= 2.0;
    for (unsigned it = 0; it < 200; ++it) {
        double mid = 0.5 * (lo + hi);
        if (Z + raw + waits(mid) > mid)
            lo = mid;
        else
            hi = mid;
        if ((hi - lo) < 1e-9 * hi)
            break;
    }
    double cycle = 0.5 * (lo + hi);

    res.cycleTimeNs = cycle;
    res.responseTimeNs = cycle - Z;
    res.efficiency = Z / cycle;
    res.busUtilization = std::min(N / cycle * d_bus, 1.0);
    res.throughputPerProc = 1.0 / cycle;
    return res;
}

} // namespace mcube
