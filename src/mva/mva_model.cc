#include "mva/mva_model.hh"

#include <algorithm>
#include <cmath>

namespace mcube
{

namespace
{

/** Mix sanity: fractions must sum to ~1. */
double
mixSum(const MvaParams &p)
{
    return p.fracReadUnmod + p.fracReadMod + p.fracWriteUnmod
         + p.fracWriteMod;
}

} // namespace

double
MvaModel::dataOpTime() const
{
    double words = static_cast<double>(params.blockWords);
    if (params.pieceWords > 0 && params.pieceWords < params.blockWords) {
        // Section 5: the line moves in fixed-size pieces, each with
        // its own header; total wire time grows by the extra headers.
        double pieces = std::ceil(words / params.pieceWords);
        return pieces * params.headerTimeNs + words * params.wordTimeNs;
    }
    return params.headerTimeNs + words * params.wordTimeNs;
}

double
MvaModel::dataLegLatencyFirst() const
{
    // Latency until the receiving controller can begin forwarding.
    bool cut = params.technique == LatencyTechnique::CutThrough
            || params.technique == LatencyTechnique::Both;
    if (params.pieceWords > 0 && params.pieceWords < params.blockWords)
        return params.headerTimeNs + params.pieceWords * params.wordTimeNs;
    if (cut)
        return params.headerTimeNs + params.wordTimeNs;
    return dataOpTime();
}

double
MvaModel::dataLegLatencyFinal() const
{
    // Latency until the requested word reaches the processor.
    bool rwf = params.technique == LatencyTechnique::RequestedWordFirst
            || params.technique == LatencyTechnique::Both;
    if (params.pieceWords > 0 && params.pieceWords < params.blockWords)
        return params.headerTimeNs + params.pieceWords * params.wordTimeNs;
    if (rwf)
        return params.headerTimeNs + params.wordTimeNs;
    return dataOpTime();
}

double
MvaModel::rowDemandPerTxn() const
{
    const double sh = params.headerTimeNs;
    const double sd = dataOpTime();
    const double n = params.n;

    // Per class: expected row-bus occupancy (all ops, on the wire).
    double ru = sh + sd;                    // request + reply
    double rm = sh + sd + sd * (1.0 - 1.0 / n);  // + memory update leg
    double wu = sh + sd + (n - 1.0) * sh;   // + (n-1) short purges
    double wm = sh + sd;
    // A home-column cache hit uses the same two row ops (and no
    // column ops), so ru is unchanged on rows.

    return params.fracReadUnmod * ru + params.fracReadMod * rm
         + params.fracWriteUnmod * wu + params.fracWriteMod * wm;
}

double
MvaModel::colDemandPerTxn() const
{
    const double sh = params.headerTimeNs;
    const double sd = dataOpTime();

    // Home-column cache hits skip the column entirely.
    double ru = (1.0 - params.pHomeCacheHit) * (sh + sd);
    double rm = sh + sd + sd;        // + memory-update write
    double wu = 2.0 * sh + sd;       // request + reply + table insert
    double wm = sh + sd + sh;        // request + reply-insert + insert

    return params.fracReadUnmod * ru + params.fracReadMod * rm
         + params.fracWriteUnmod * wu + params.fracWriteMod * wm;
}

double
MvaModel::rawLatency() const
{
    const double sh = params.headerTimeNs;
    const double two_leg = sh + sh + dataLegLatencyFirst()
                         + dataLegLatencyFinal();
    // Home-column cache hit: one row request, cache access, one row
    // data leg.
    const double home_hit =
        sh + params.cacheLatencyNs + dataLegLatencyFinal();

    double ru = params.pHomeCacheHit * home_hit
              + (1.0 - params.pHomeCacheHit)
                    * (two_leg + params.memoryLatencyNs);
    double rm = two_leg + params.cacheLatencyNs;
    double wu = two_leg + params.memoryLatencyNs;
    double wm = two_leg + params.cacheLatencyNs;

    return params.fracReadUnmod * ru + params.fracReadMod * rm
         + params.fracWriteUnmod * wu + params.fracWriteMod * wm;
}

MvaResult
MvaModel::solve() const
{
    MvaResult res;
    double mix = mixSum(params);
    if (mix < 0.999 || mix > 1.001)
        return res;  // invalid mix: all-zero result

    const double n = params.n;
    const double N = n * n;
    const double Z = 1e6 / params.requestsPerMs;  // ns of think time

    const double sh = params.headerTimeNs;

    // Occupancy demands at one specific bus, per transaction.
    const double o_row = rowDemandPerTxn();
    const double o_col = colDemandPerTxn();
    const double d_row = o_row / n;
    const double d_col = o_col / n;

    // Expected op counts (for mean service time at a bus).
    const double sd = dataOpTime();
    double ops_row = params.fracReadUnmod * 2.0
                   + params.fracReadMod * 3.0
                   + params.fracWriteUnmod * (1.0 + n)
                   + params.fracWriteMod * 2.0;
    double ops_col = params.fracReadUnmod * 2.0
                   + params.fracReadMod * 3.0
                   + params.fracWriteUnmod * 3.0
                   + params.fracWriteMod * 3.0;
    const double sbar_row = o_row / ops_row;
    const double sbar_col = o_col / ops_col;
    (void)sd;

    // Critical-path service (two visits per dimension).
    const double raw = rawLatency();

    // Waiting time per queued visit given a candidate cycle time.
    // Larger cycle => lower throughput => lower utilisation => less
    // waiting, so g(cycle) = Z + raw + waits(cycle) is strictly
    // decreasing and the fixed point g(c) = c is unique: bisect.
    const double corr = (N - 1.0) / N;
    auto waits = [&](double cycle) {
        double x_sys = N / cycle;
        double u_row = std::min(x_sys * d_row, 0.999999);
        double u_col = std::min(x_sys * d_col, 0.999999);
        double w_row = u_row * corr * sbar_row
                     / std::max(1e-9, 1.0 - u_row * corr);
        double w_col = u_col * corr * sbar_col
                     / std::max(1e-9, 1.0 - u_col * corr);
        return 2.0 * w_row + 2.0 * w_col;
    };

    // Expand until g(hi) <= hi; g is bounded by the saturated waiting
    // time, so this terminates.
    double lo = Z + raw;
    double hi = lo;
    while (Z + raw + waits(hi) > hi)
        hi *= 2.0;
    unsigned it = 0;
    for (; it < 200; ++it) {
        double mid = 0.5 * (lo + hi);
        double g = Z + raw + waits(mid);
        if (g > mid)
            lo = mid;
        else
            hi = mid;
        if ((hi - lo) < 1e-9 * hi)
            break;
    }
    double cycle = 0.5 * (lo + hi);

    double x_proc = 1.0 / cycle;
    double x_sys = N * x_proc;
    res.cycleTimeNs = cycle;
    res.responseTimeNs = cycle - Z;
    res.efficiency = Z / cycle;
    res.rowUtilization = std::min(x_sys * d_row, 1.0);
    res.colUtilization = std::min(x_sys * d_col, 1.0);
    res.throughputPerProc = x_proc;
    res.iterations = it;
    (void)sh;
    return res;
}

} // namespace mcube
