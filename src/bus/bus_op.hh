/**
 * @file
 * Bus operation encoding for the Multicube coherence protocol.
 *
 * Appendix A of the paper describes every protocol step as a bus
 * operation named by a transaction type plus a parameter list, e.g.
 * READ (COLUMN, REQUEST, REMOVE). BusOp carries exactly those fields:
 * a transaction type, a parameter bitmask, the originating node id
 * (for routing replies / "id match" tests), the line address, and
 * optionally the line contents.
 */

#ifndef MCUBE_BUS_BUS_OP_HH
#define MCUBE_BUS_BUS_OP_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace mcube
{

/** Transaction types (Appendix A, plus the Section 4 sync extension). */
enum class TxnType : std::uint8_t
{
    Read,       //!< result of a read miss
    ReadMod,    //!< result of a write miss
    Allocate,   //!< write-whole-line hint (READ-MOD minus the data reply)
    WriteBack,  //!< replacement of a modified line
    Tset,       //!< remote test-and-set (Section 4)
    Sync,       //!< distributed queue-lock join (Section 4)
};

/** Bus operation parameters (Appendix A terminology), one bit each. */
namespace op
{

constexpr std::uint16_t Request = 1u << 0;  //!< request for a line
constexpr std::uint16_t Reply = 1u << 1;    //!< reply (line or ack)
constexpr std::uint16_t Insert = 1u << 2;   //!< insert MLT entry
constexpr std::uint16_t Remove = 1u << 3;   //!< remove MLT entry
constexpr std::uint16_t Update = 1u << 4;   //!< memory must be updated
constexpr std::uint16_t Purge = 1u << 5;    //!< purge copies of the line
constexpr std::uint16_t NoPurge = 1u << 6;  //!< explicitly no purge needed
constexpr std::uint16_t Memory = 1u << 7;   //!< destined for memory
constexpr std::uint16_t Fail = 1u << 8;     //!< sync/tset failure notice
constexpr std::uint16_t Ack = 1u << 9;      //!< dataless acknowledge
constexpr std::uint16_t Direct = 1u << 10;  //!< addressed to op.dest only

} // namespace op

/**
 * Contents of one coherency block as carried on a bus.
 *
 * Coherence in this machine is line granular, so a single 64-bit token
 * models the payload for correctness checking; `lock` and `next` are
 * the two words the Section 4 synchronisation scheme uses inside a
 * line (the lock word proper and the distributed-queue link word).
 * Timing uses the configured block size, not sizeof(LineData).
 */
struct LineData
{
    std::uint64_t token = 0;    //!< value identity for checking
    std::uint64_t lock = 0;     //!< test-and-set target word
    NodeId next = invalidNode;  //!< queue-lock successor node

    bool operator==(const LineData &) const = default;
};

/** One operation as placed on a row or column bus. */
struct BusOp
{
    TxnType txn = TxnType::Read;
    std::uint16_t params = 0;
    NodeId origin = invalidNode;  //!< transaction originator
    NodeId sender = invalidNode;  //!< node that issued this op
    NodeId dest = invalidNode;    //!< target of a Direct op
    Addr addr = 0;
    bool hasData = false;
    LineData data{};
    std::uint64_t serial = 0;     //!< unique id, assigned by the bus
    /**
     * Originator's transaction-instance id, stamped on requests and
     * copied into the replies they elicit. Once requests can be
     * reissued (watchdog recovery), a node may have several live
     * requests on the wire; a reply must only complete the pending
     * transaction that actually sent its request, never a newer
     * same-address one. 0 means "instance unknown" (sync grants and
     * hand-offs, which answer a queued waiter rather than a specific
     * request) and matches any pending transaction.
     */
    std::uint64_t reqSeq = 0;

    bool is(std::uint16_t p) const { return (params & p) == p; }
};

/** Upper-case transaction name, e.g. "READMOD". */
const char *toString(TxnType txn);

/** Inverse of toString(TxnType); false if @p name is unknown. */
bool txnTypeFromString(const std::string &name, TxnType &out);

/** Short text form, e.g. "READMOD(REQUEST|REMOVE) addr=5 org=3". */
std::string toString(const BusOp &op);

std::ostream &operator<<(std::ostream &os, const BusOp &op);

} // namespace mcube

#endif // MCUBE_BUS_BUS_OP_HH
