#include "bus/bus_op.hh"

#include <sstream>

namespace mcube
{

const char *
toString(TxnType t)
{
    switch (t) {
      case TxnType::Read: return "READ";
      case TxnType::ReadMod: return "READMOD";
      case TxnType::Allocate: return "ALLOCATE";
      case TxnType::WriteBack: return "WRITEBACK";
      case TxnType::Tset: return "TSET";
      case TxnType::Sync: return "SYNC";
    }
    return "?";
}

bool
txnTypeFromString(const std::string &name, TxnType &out)
{
    for (auto t : {TxnType::Read, TxnType::ReadMod, TxnType::Allocate,
                   TxnType::WriteBack, TxnType::Tset, TxnType::Sync}) {
        if (name == toString(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

std::string
toString(const BusOp &o)
{
    std::ostringstream oss;
    oss << toString(o.txn) << "(";
    const char *sep = "";
    auto flag = [&](std::uint16_t p, const char *name) {
        if (o.params & p) {
            oss << sep << name;
            sep = "|";
        }
    };
    flag(op::Request, "REQUEST");
    flag(op::Reply, "REPLY");
    flag(op::Insert, "INSERT");
    flag(op::Remove, "REMOVE");
    flag(op::Update, "UPDATE");
    flag(op::Purge, "PURGE");
    flag(op::NoPurge, "NOPURGE");
    flag(op::Memory, "MEMORY");
    flag(op::Fail, "FAIL");
    flag(op::Ack, "ACK");
    flag(op::Direct, "DIRECT");
    oss << ") addr=" << o.addr << " org=";
    if (o.origin == invalidNode)
        oss << "-";
    else
        oss << o.origin;
    oss << " snd=";
    if (o.sender == invalidNode)
        oss << "-";
    else
        oss << o.sender;
    if (o.hasData)
        oss << " tok=" << o.data.token;
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const BusOp &op)
{
    return os << toString(op);
}

} // namespace mcube
