/**
 * @file
 * A snooping bus with round-robin arbitration and atomic broadcast.
 *
 * Timing model: an agent enqueues operations into its private FIFO;
 * when the bus is idle it grants the next non-empty queue round-robin.
 * The granted op occupies the bus for
 *
 *     arbitration + header + (hasData ? blockWords x wordTicks : 0)
 *
 * ticks and is then delivered to every attached agent in one tick —
 * the defining property of snooping. Delivery happens in two passes:
 * first every agent is asked whether it asserts the wired-OR
 * "modified" line for this op (the paper's fixed-delay row-bus
 * signal), then every agent snoops the op with the collected signal
 * value. With cut-through forwarding enabled (Section 5), delivery of
 * a data-carrying op happens one header + one word after the grant, so
 * a receiving controller can begin forwarding on its second bus while
 * the tail of the block is still in flight; the bus stays occupied for
 * the full transfer either way.
 */

#ifndef MCUBE_BUS_BUS_HH
#define MCUBE_BUS_BUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/bus_op.hh"
#include "sim/event_queue.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace_event.hh"

namespace mcube
{

class Bus;

/**
 * What a fault hook decided to do with an op about to be enqueued.
 * Actions compose: a duplicated op may also have its original delayed.
 */
struct FaultAction
{
    bool drop = false;      //!< silently discard the op
    Tick delayTicks = 0;    //!< extra ticks before the op enqueues
    bool duplicate = false; //!< enqueue a second copy immediately
};

/**
 * Interceptor consulted once per Bus::request before the op enters an
 * agent's FIFO (delivery itself stays an atomic broadcast). This is
 * the attach point of the fault-injection subsystem: a dropped op
 * never existed on the wire, a delayed op enqueues late, a duplicated
 * op is granted twice with distinct serials.
 */
class BusFaultHook
{
  public:
    virtual ~BusFaultHook() = default;

    /** Decide the fate of @p op about to enqueue on @p bus. */
    virtual FaultAction onEnqueue(const Bus &bus, const BusOp &op) = 0;
};

/** Interface every device on a bus implements. */
class BusAgent
{
  public:
    virtual ~BusAgent() = default;

    /**
     * Pass 1 of delivery: should this agent assert the modified line
     * for @p op? Only meaningful for row-bus REQUEST ops; the default
     * (false) suits agents that never assert it.
     */
    virtual bool supplyModifiedSignal(const BusOp &op)
    {
        (void)op;
        return false;
    }

    /**
     * Pass 2 of delivery: observe @p op. All agents on the bus,
     * including the op's sender, snoop every op (Appendix A).
     *
     * @param op The delivered operation.
     * @param modified_signal Wired-OR of pass 1 across all agents.
     */
    virtual void snoop(const BusOp &op, bool modified_signal) = 0;

    /**
     * Simulator fast path: may both delivery passes be skipped for
     * this agent? An agent may return true only if its
     * supplyModifiedSignal would return false (without side effects)
     * AND skipping its snoop body is behaviour-preserving — either
     * the body would provably do nothing for @p op, or this call
     * performed the body's only side effect itself. False negatives
     * of an underlying presence summary are a correctness bug,
     * checked in debug builds. The default (never skip) is always
     * safe; simulated results must be bit-identical whether or not
     * any agent ever returns true.
     */
    virtual bool
    snoopRejects(const BusOp &op)
    {
        (void)op;
        return false;
    }
};

/** Static timing/behaviour parameters of a bus. */
struct BusParams
{
    /** Ticks for the address/command portion of any op. */
    Tick headerTicks = 50;
    /** Ticks per data word on the bus (paper: 50 ns). */
    Tick wordTicks = 50;
    /** Words per transferred block (paper default: 16). */
    unsigned blockWords = 16;
    /** Arbitration overhead per grant. */
    Tick arbTicks = 0;
    /**
     * Deliver data ops after header + 1 word instead of after the
     * full transfer (Section 5 cut-through forwarding). The bus still
     * stays busy for the whole transfer.
     */
    bool cutThrough = false;
    /**
     * Send data blocks as fixed-size pieces of this many words
     * (Section 5's "small fixed-size pieces"; 0 disables). Each piece
     * carries its own header, so occupancy grows, but the op is
     * delivered — requested word first — after the first piece.
     */
    unsigned pieceWords = 0;
};

/**
 * One bus (a row bus or a column bus of the grid, or the single bus of
 * the baseline multi).
 */
class Bus
{
  public:
    /**
     * @param name Instance name for stats/tracing.
     * @param eq Shared event queue.
     * @param params Timing parameters.
     */
    Bus(std::string name, EventQueue &eq, const BusParams &params);

    Bus(const Bus &) = delete;
    Bus &operator=(const Bus &) = delete;

    /**
     * Attach an agent. @return the agent's slot id, used with
     * request().
     */
    unsigned attach(BusAgent *agent);

    /**
     * Enqueue @p op into slot @p slot's FIFO and start arbitration if
     * the bus is idle. Ops from one slot are delivered in FIFO order
     * (unless a fault hook drops, delays or duplicates the op).
     */
    void request(unsigned slot, BusOp op);

    /**
     * Install (or clear, with nullptr) the fault hook consulted on
     * every request(). At most one hook per bus; the fault injector
     * owns the composition of multiple fault specs.
     */
    void setFaultHook(BusFaultHook *hook) { faultHook = hook; }

    const std::string &name() const { return _name; }
    const BusParams &params() const { return _params; }

    /** Number of ops delivered so far. */
    std::uint64_t opsDelivered() const { return statOps.value(); }

    /** Ticks the bus has been occupied. */
    Tick busyTicks() const { return statBusyTicks.value(); }

    /** Utilisation over [0, now]. */
    double utilization() const;

    /** Register this bus's stats under @p parent. */
    void regStats(StatGroup &parent);

    /** Pending (undelivered) op count, for drain checks. */
    std::size_t pendingOps() const { return pending; }

    /**
     * Fail-stop this bus permanently (docs/ROBUSTNESS.md): arbitration
     * stops granting, every queued op is discarded, and later
     * request() calls fall on deaf ears (counted in dead_drops).
     * Already-granted in-flight deliveries are suppressed — the wire
     * went silent mid-transfer. pendingOps() settles back to zero as
     * those events fire, so drain() still terminates.
     */
    void failStop();

    /** True once failStop() was called. */
    bool dead() const { return dead_; }

    /** This bus's profiling domain (row i / col j / none). */
    ProfDomain profDomain() const { return profDom; }

    /**
     * Pin this bus's internal events (arbitrate/deliver/release) to
     * parallel-engine lane @p lane (see sim/parallel_engine.hh). A
     * request() arriving from a foreign lane is deferred to this lane
     * at the next window barrier in canonical order. Lane 0 (the
     * serial lane, also the sequential-engine default) is always
     * valid.
     */
    void setScheduleLane(unsigned lane) { lane_ = lane; }

    /** The engine lane this bus's events run on. */
    unsigned scheduleLane() const { return lane_; }

  private:
    /** Assign a serial and place @p op in slot @p slot's FIFO. */
    void enqueue(unsigned slot, BusOp op);

    /** Occupancy of @p op on the wire. */
    Tick occupancy(const BusOp &op) const;

    /** Grant the next queued op if the bus is idle. */
    void tryArbitrate();

    /** Broadcast @p op to all agents (two-pass). */
    void deliver(const BusOp &op);

    std::string _name;
    EventQueue &eq;
    BusParams _params;

    /** Trace identity, derived from the instance name ("row3" /
     *  "col1"; anything else is a generic Bus). */
    TraceComp traceComp = TraceComp::Bus;
    std::uint32_t traceIndex = 0;

    /** Profiling identity, derived like the trace identity. */
    ProfDomain profDom;

    /**
     * One queued (op, enqueue tick) entry of a per-slot FIFO. Entries
     * live in a pooled slab (free-listed vector) and are chained
     * through `next`, so steady-state enqueue/dequeue traffic reuses
     * slab slots instead of churning deque nodes through the
     * allocator.
     */
    struct QueuedOp
    {
        BusOp op;
        Tick enqTick = 0;
        std::uint32_t next = noEntry;
        /** Domain context the op was enqueued under (coupling
         *  analysis); stamped only while a profiler is active. */
        ProfDomain from;
    };

    /** Head/tail slab indices of one slot's FIFO. */
    struct SlotQueue
    {
        std::uint32_t head = noEntry;
        std::uint32_t tail = noEntry;
    };

    static constexpr std::uint32_t noEntry = UINT32_MAX;

    /** Take a free slab entry (grows the slab if none). */
    std::uint32_t slabAlloc();
    /** Return entry @p idx to the free list. */
    void slabFree(std::uint32_t idx);

    BusFaultHook *faultHook = nullptr;
    std::vector<BusAgent *> agents;
    std::vector<SlotQueue> queues;
    std::vector<QueuedOp> slab;
    std::uint32_t slabFreeHead = noEntry;
    /** Per-agent reject decisions of the delivery in progress
     *  (reused scratch, index-parallel with `agents`). */
    std::vector<std::uint8_t> rejectScratch;
    unsigned lastGranted = 0;
    unsigned lane_ = 0; //!< parallel-engine lane (0 = serial lane)
    bool busy = false;
    bool dead_ = false;  //!< failStop() latch; never cleared
    std::size_t pending = 0;
    std::uint64_t nextSerial = 1;

    Counter statOps;
    Counter statDeadDrops;
    Counter statDataOps;
    Counter statBusyTicks;
    Distribution statQueueDelay;
    Histogram statQueueDelayHist;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_BUS_BUS_HH
