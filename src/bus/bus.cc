#include "bus/bus.hh"

#include <cassert>
#include <utility>

#include "sim/log.hh"

namespace mcube
{

Bus::Bus(std::string name, EventQueue &eq, const BusParams &params)
    : _name(std::move(name)), eq(eq), _params(params), stats(_name)
{
    stats.addCounter("ops", statOps, "bus operations delivered");
    stats.addCounter("dead_drops", statDeadDrops,
                     "ops discarded because the bus fail-stopped");
    stats.addCounter("data_ops", statDataOps,
                     "operations carrying a data block");
    stats.addCounter("busy_ticks", statBusyTicks,
                     "ticks the bus was occupied");
    stats.addDistribution("queue_delay", statQueueDelay,
                          "ticks from enqueue to grant");
    stats.addHistogram("queue_delay_hist", statQueueDelayHist,
                       "enqueue-to-grant delay distribution");

    if (_name.rfind("row", 0) == 0) {
        traceComp = TraceComp::RowBus;
        traceIndex = static_cast<std::uint32_t>(
            std::atoi(_name.c_str() + 3));
        profDom = {ProfDomain::Dim::Row,
                   static_cast<std::uint16_t>(traceIndex)};
    } else if (_name.rfind("col", 0) == 0) {
        traceComp = TraceComp::ColBus;
        traceIndex = static_cast<std::uint32_t>(
            std::atoi(_name.c_str() + 3));
        profDom = {ProfDomain::Dim::Col,
                   static_cast<std::uint16_t>(traceIndex)};
    }
}

unsigned
Bus::attach(BusAgent *agent)
{
    assert(agent);
    agents.push_back(agent);
    queues.emplace_back();
    return static_cast<unsigned>(agents.size() - 1);
}

void
Bus::request(unsigned slot, BusOp op)
{
    assert(slot < queues.size());
    if (eq.foreignLane(lane_)) {
        // Parallel engine, caller runs on another lane (e.g. a
        // controller relaying a row-bus delivery onto its column
        // bus): this bus's state may be live on its own lane right
        // now. Re-issue the request from this lane's context at the
        // next window barrier, in canonical cross-lane order.
        eq.deferToLane(lane_,
                       [this, slot, op = std::move(op)]() mutable {
                           request(slot, std::move(op));
                       });
        return;
    }
    if (dead_) {
        ++statDeadDrops;
        MCUBE_LOG(LogCat::Bus, eq.now(),
                  _name << " DEAD drop slot=" << slot << " " << op);
        return;
    }
    if (faultHook) {
        FaultAction act = faultHook->onEnqueue(*this, op);
        if (act.drop) {
            MCUBE_LOG(LogCat::Bus, eq.now(),
                      _name << " FAULT drop slot=" << slot << " " << op);
            return;
        }
        if (act.duplicate) {
            MCUBE_LOG(LogCat::Bus, eq.now(),
                      _name << " FAULT dup slot=" << slot << " " << op);
            enqueue(slot, op);
        }
        if (act.delayTicks > 0) {
            MCUBE_LOG(LogCat::Bus, eq.now(),
                      _name << " FAULT delay " << act.delayTicks
                            << " slot=" << slot << " " << op);
            eq.scheduleInLane(lane_, act.delayTicks, [this, slot, op] {
                enqueue(slot, op);
                if (!busy)
                    tryArbitrate();
            });
            if (!busy)
                tryArbitrate();
            return;
        }
    }
    enqueue(slot, op);
    if (!busy)
        tryArbitrate();
}

std::uint32_t
Bus::slabAlloc()
{
    if (slabFreeHead != noEntry) {
        std::uint32_t idx = slabFreeHead;
        slabFreeHead = slab[idx].next;
        return idx;
    }
    slab.emplace_back();
    return static_cast<std::uint32_t>(slab.size() - 1);
}

void
Bus::slabFree(std::uint32_t idx)
{
    slab[idx].next = slabFreeHead;
    slabFreeHead = idx;
}

void
Bus::enqueue(unsigned slot, BusOp op)
{
    // A fault-delayed enqueue may land after a fail-stop; it dies on
    // the dead wire like everything else.
    if (dead_) {
        ++statDeadDrops;
        return;
    }
    op.serial = nextSerial++;
    MCUBE_LOG(LogCat::Bus, eq.now(),
              _name << " enq slot=" << slot << " " << op);
    std::uint32_t idx = slabAlloc();
    slab[idx].op = op;
    slab[idx].enqTick = eq.now();
    slab[idx].next = noEntry;
    // Coupling analysis: remember which domain's delivery enqueued
    // this op. Cleared (not skipped) when profiling is off so a slab
    // entry reused across an activate() can't carry a stale domain.
    SimProfiler *prof = SimProfiler::active();
    slab[idx].from = prof ? prof->currentDomain() : ProfDomain{};
    SlotQueue &q = queues[slot];
    if (q.tail == noEntry)
        q.head = idx;
    else
        slab[q.tail].next = idx;
    q.tail = idx;
    ++pending;
}

Tick
Bus::occupancy(const BusOp &op) const
{
    if (op.hasData && _params.pieceWords > 0
        && _params.pieceWords < _params.blockWords) {
        // One header per piece plus the full block of words.
        Tick pieces = (_params.blockWords + _params.pieceWords - 1)
                    / _params.pieceWords;
        return pieces * _params.headerTicks
             + static_cast<Tick>(_params.blockWords)
                   * _params.wordTicks;
    }
    Tick t = _params.headerTicks;
    if (op.hasData)
        t += static_cast<Tick>(_params.blockWords) * _params.wordTicks;
    return t;
}

void
Bus::tryArbitrate()
{
    if (busy || dead_)
        return;

    MCUBE_PROF_SCOPE(profScope, ProfKind::BusArb, traceIndex, profDom);

    // Round-robin scan starting after the last granted slot.
    const auto n = static_cast<unsigned>(queues.size());
    unsigned chosen = n;
    for (unsigned i = 1; i <= n; ++i) {
        unsigned s = (lastGranted + i) % n;
        if (queues[s].head != noEntry) {
            chosen = s;
            break;
        }
    }
    if (chosen == n)
        return;

    busy = true;
    lastGranted = chosen;
    SlotQueue &q = queues[chosen];
    std::uint32_t idx = q.head;
    BusOp op = slab[idx].op;
    Tick enq_tick = slab[idx].enqTick;
    ProfDomain enq_from = slab[idx].from;
    q.head = slab[idx].next;
    if (q.head == noEntry)
        q.tail = noEntry;
    slabFree(idx);
    Tick qdelay = eq.now() - enq_tick;
    statQueueDelay.sample(static_cast<double>(qdelay));
    statQueueDelayHist.sample(static_cast<double>(qdelay));
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::BusGrant, traceComp,
                            op.txn, op.params, traceIndex, op.origin,
                            op.addr, op.reqSeq, op.serial,
                            static_cast<std::int64_t>(qdelay)}));

    Tick occ = _params.arbTicks + occupancy(op);
    statBusyTicks += occ;
    if (op.hasData)
        ++statDataOps;

    // Cut-through: snoopers see (and may forward) a data op after the
    // first word; the wire is still held for the whole block. Piece
    // transfers deliver after the first piece (requested word first).
    Tick deliver_at = occ;
    if (op.hasData && _params.pieceWords > 0
        && _params.pieceWords < _params.blockWords) {
        deliver_at = _params.arbTicks + _params.headerTicks
                   + static_cast<Tick>(_params.pieceWords)
                         * _params.wordTicks;
    } else if (_params.cutThrough && op.hasData) {
        deliver_at = _params.arbTicks + _params.headerTicks
                   + _params.wordTicks;
    }

    if (SimProfiler *prof = SimProfiler::active()) {
        // Full enqueue-to-delivery latency: the minimum observed over
        // cross-domain ops bounds how soon one domain can affect
        // another — the conservative parallel-DES lookahead.
        prof->onBusGrant(profDom, enq_from, qdelay + deliver_at);
    }

    if (deliver_at == occ) {
        // Common case (no cut-through / pieces): delivery and bus
        // release land on the same tick, in that order. Batch them
        // into one event — half the queue traffic of the split form,
        // with an identical firing sequence.
        eq.scheduleInLane(lane_, occ, [this, op = std::move(op)] {
            deliver(op);
            busy = false;
            tryArbitrate();
        });
    } else {
        eq.scheduleInLane(lane_, deliver_at,
                          [this, op = std::move(op)] {
                              deliver(op);
                          });
        eq.scheduleInLane(lane_, occ, [this] {
            busy = false;
            tryArbitrate();
        });
    }
}

void
Bus::deliver(const BusOp &op)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::BusDeliver, traceIndex,
                     profDom);
    if (dead_) {
        // An in-flight grant whose delivery event was already
        // scheduled when the bus died: the transfer never completes.
        ++statDeadDrops;
        assert(pending > 0);
        --pending;
        return;
    }
    MCUBE_LOG(LogCat::Bus, eq.now(), _name << " deliver " << op);
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::BusDeliver, traceComp,
                            op.txn, op.params, traceIndex, op.origin,
                            op.addr, op.reqSeq, op.serial, 0}));
    ++statOps;
    assert(pending > 0);
    --pending;

    // Fast-reject pass: an agent whose presence summary rejects the
    // address skips both delivery passes. A rejecting agent's
    // supplyModifiedSignal is guaranteed false with no side effects
    // (see BusAgent::snoopRejects), so the wired-OR is unchanged;
    // decisions are cached per agent because an agent's snoop may
    // mutate only its own state, never another agent's.
    rejectScratch.resize(agents.size());
    bool modified_signal = false;
    for (std::size_t i = 0; i < agents.size(); ++i) {
        bool rej = agents[i]->snoopRejects(op);
        rejectScratch[i] = rej;
        if (!rej)
            modified_signal |= agents[i]->supplyModifiedSignal(op);
    }
    for (std::size_t i = 0; i < agents.size(); ++i)
        if (!rejectScratch[i])
            agents[i]->snoop(op, modified_signal);
}

void
Bus::failStop()
{
    if (dead_)
        return;
    dead_ = true;
    for (SlotQueue &q : queues) {
        std::uint32_t idx = q.head;
        while (idx != noEntry) {
            std::uint32_t next = slab[idx].next;
            slabFree(idx);
            ++statDeadDrops;
            assert(pending > 0);
            --pending;
            idx = next;
        }
        q.head = q.tail = noEntry;
    }
    MCUBE_LOG(LogCat::Bus, eq.now(), _name << " FAIL-STOP");
}

double
Bus::utilization() const
{
    Tick now = eq.now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(statBusyTicks.value())
         / static_cast<double>(now);
}

void
Bus::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
