/**
 * @file
 * Shared helpers for the experiment benches: run a MixWorkload
 * simulation or an MVA solve for one configuration and report the
 * paper's metrics.
 *
 * Benches can additionally record machine-readable results through
 * BenchJson: each recorded (bench, label) point lands in a
 * BENCH_<bench>.json file in the working directory when the process
 * exits, carrying the headline metrics, the flattened stat tree of
 * the simulated system, wall time and the git revision — the file a
 * regression dashboard diffs across commits.
 */

#ifndef MCUBE_BENCH_BENCH_UTIL_HH
#define MCUBE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "core/system.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"

namespace mcube::bench
{

/** Result of one simulated workload run. */
struct SimPoint
{
    double efficiency = 0.0;
    double rowUtil = 0.0;
    double colUtil = 0.0;
    double meanLatencyNs = 0.0;
    std::uint64_t transactions = 0;
    std::uint64_t busOps = 0;
    /** Host wall-clock seconds the simulation took. */
    double wallSeconds = 0.0;
    /** Flattened stat tree of the simulated system. */
    std::map<std::string, double> stats;
};

/** Run the synthetic mix on an n x n machine for @p sim_ms of
 *  simulated time. */
inline SimPoint
runMixSim(unsigned n, const MixParams &mix, double sim_ms = 2.0,
          const SystemParams *base = nullptr)
{
    SystemParams sp;
    if (base)
        sp = *base;
    sp.n = n;
    auto wall_start = std::chrono::steady_clock::now();
    MulticubeSystem sys(sp);
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(sim_ms * 1e6));
    wl.stop();
    sys.drain();

    SimPoint out;
    out.efficiency = wl.efficiency();
    out.rowUtil = sys.meanBusUtilization(0);
    out.colUtil = sys.meanBusUtilization(1);
    out.meanLatencyNs = wl.meanLatency();
    out.transactions = wl.totalCompleted();
    out.busOps = sys.totalBusOps();
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    sys.statistics().flatten(out.stats);
    return out;
}

/** MVA solve for the same configuration. */
inline MvaResult
runMva(unsigned n, double rate, const MvaParams *base = nullptr)
{
    MvaParams p;
    if (base)
        p = *base;
    p.n = n;
    p.requestsPerMs = rate;
    return MvaModel(p).solve();
}

/**
 * Machine-readable bench-result registry. record() points during the
 * run; each bench's points are written to BENCH_<bench>.json at
 * process exit (one flat string->double map per point, plus the git
 * revision for cross-commit comparison).
 */
class BenchJson
{
  public:
    static BenchJson &
    instance()
    {
        static BenchJson reg;
        return reg;
    }

    void
    record(const std::string &bench, const std::string &label,
           std::map<std::string, double> metrics)
    {
        data[bench][label] = std::move(metrics);
    }

    /** Record @p p under @p label, stat tree included. */
    void
    record(const std::string &bench, const std::string &label,
           const SimPoint &p)
    {
        std::map<std::string, double> m = p.stats;
        m["efficiency"] = p.efficiency;
        m["row_util"] = p.rowUtil;
        m["col_util"] = p.colUtil;
        m["mean_latency_ns"] = p.meanLatencyNs;
        m["transactions"] = static_cast<double>(p.transactions);
        m["bus_ops"] = static_cast<double>(p.busOps);
        m["wall_seconds"] = p.wallSeconds;
        record(bench, label, std::move(m));
    }

    ~BenchJson()
    {
        std::string rev = gitRev();
        for (const auto &[bench, points] : data) {
            std::ofstream os("BENCH_" + bench + ".json");
            if (!os)
                continue;
            os << "{\n  \"bench\": \"" << bench << "\",\n"
               << "  \"git_rev\": \"" << rev << "\",\n"
               << "  \"points\": {";
            const char *psep = "\n";
            for (const auto &[label, metrics] : points) {
                os << psep << "    \"" << label << "\": {";
                const char *msep = "";
                for (const auto &[name, value] : metrics) {
                    os << msep << "\n      \"" << name
                       << "\": " << value;
                    msep = ",";
                }
                os << "\n    }";
                psep = ",\n";
            }
            os << "\n  }\n}\n";
        }
    }

  private:
    BenchJson() = default;

    /** Best-effort HEAD revision; "unknown" outside a git checkout. */
    static std::string
    gitRev()
    {
        std::string rev = "unknown";
        if (FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
            char buf[64] = {};
            if (fgets(buf, sizeof(buf), p)) {
                rev.assign(buf);
                while (!rev.empty()
                       && (rev.back() == '\n' || rev.back() == '\r'))
                    rev.pop_back();
                if (rev.empty())
                    rev = "unknown";
            }
            pclose(p);
        }
        return rev;
    }

    std::map<std::string,
             std::map<std::string, std::map<std::string, double>>>
        data;
};

} // namespace mcube::bench

#endif // MCUBE_BENCH_BENCH_UTIL_HH
