/**
 * @file
 * Shared helpers for the experiment benches: run a MixWorkload
 * simulation or an MVA solve for one configuration and report the
 * paper's metrics.
 */

#ifndef MCUBE_BENCH_BENCH_UTIL_HH
#define MCUBE_BENCH_BENCH_UTIL_HH

#include <cstdint>

#include "core/system.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"

namespace mcube::bench
{

/** Result of one simulated workload run. */
struct SimPoint
{
    double efficiency = 0.0;
    double rowUtil = 0.0;
    double colUtil = 0.0;
    double meanLatencyNs = 0.0;
    std::uint64_t transactions = 0;
    std::uint64_t busOps = 0;
};

/** Run the synthetic mix on an n x n machine for @p sim_ms of
 *  simulated time. */
inline SimPoint
runMixSim(unsigned n, const MixParams &mix, double sim_ms = 2.0,
          const SystemParams *base = nullptr)
{
    SystemParams sp;
    if (base)
        sp = *base;
    sp.n = n;
    MulticubeSystem sys(sp);
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(sim_ms * 1e6));
    wl.stop();
    sys.drain();

    SimPoint out;
    out.efficiency = wl.efficiency();
    out.rowUtil = sys.meanBusUtilization(0);
    out.colUtil = sys.meanBusUtilization(1);
    out.meanLatencyNs = wl.meanLatency();
    out.transactions = wl.totalCompleted();
    out.busOps = sys.totalBusOps();
    return out;
}

/** MVA solve for the same configuration. */
inline MvaResult
runMva(unsigned n, double rate, const MvaParams *base = nullptr)
{
    MvaParams p;
    if (base)
        p = *base;
    p.n = n;
    p.requestsPerMs = rate;
    return MvaModel(p).solve();
}

} // namespace mcube::bench

#endif // MCUBE_BENCH_BENCH_UTIL_HH
