/**
 * @file
 * Shared helpers for the experiment benches: run a MixWorkload
 * simulation or an MVA solve for one configuration and report the
 * paper's metrics.
 *
 * Simulation points are embarrassingly parallel (each is one
 * single-threaded deterministic MulticubeSystem run), so benches no
 * longer run them inline: every bench *declares* its grid of points
 * into the SweepCache at static-initialization time, and the custom
 * MCUBE_BENCH_MAIN() fans all declared points across `--jobs N`
 * worker threads (default: all hardware threads; MCUBE_BENCH_JOBS
 * also works) before Google Benchmark starts. Each benchmark body
 * then just looks its point up by label. Per-point seeds are derived
 * from (base seed, declaration index), and results are stored by
 * label, so the numbers are bit-identical for any job count.
 *
 * Benches additionally record machine-readable results through
 * BenchJson: each recorded (bench, label) point lands in a
 * BENCH_<bench>.json file in the working directory, carrying the
 * headline metrics, the flattened stat tree of the simulated system,
 * wall time and the git revision — the file a regression dashboard
 * diffs across commits. The file is rewritten via temp-file + atomic
 * rename after every record(), so an aborting bench keeps every point
 * recorded so far and a reader never observes a truncated file.
 */

#ifndef MCUBE_BENCH_BENCH_UTIL_HH
#define MCUBE_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hh"
#include "mva/mva_model.hh"
#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "run/shutdown.hh"
#include "run/work_journal.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "proc/mix_workload.hh"
#include "sim/sweep_runner.hh"

namespace mcube::bench
{

/** Result of one simulated workload run. */
struct SimPoint
{
    double efficiency = 0.0;
    double rowUtil = 0.0;
    double colUtil = 0.0;
    double meanLatencyNs = 0.0;
    std::uint64_t transactions = 0;
    std::uint64_t busOps = 0;
    /** Host wall-clock seconds the simulation took. */
    double wallSeconds = 0.0;
    /** Events the event queue executed during the run. */
    std::uint64_t simEvents = 0;
    /** Final simulated tick. */
    std::uint64_t simTicks = 0;
    /**
     * @{
     * Parallel-engine telemetry (docs/PERFORMANCE.md). All zero when
     * the run used the sequential engine (simThreads == 0).
     */
    /** Effective worker count (0 = sequential engine). */
    double parWorkers = 0.0;
    /** Amdahl projection from the realized serial fraction at the
     *  effective worker count. */
    double parProjectedSpeedup = 0.0;
    /** Fraction of events executed on the serial lane. */
    double parSerialFracEvents = 0.0;
    /** Mean serial-lane events per window. */
    double parSerialEventsPerWindow = 0.0;
    /** Mean wall nanoseconds of the serial phase per window. */
    double parSerialNsPerWindow = 0.0;
    /** VmHWM (peak RSS bytes) at the end of the run; 0 if unknown. */
    double parPeakRssBytes = 0.0;
    /** @} */
    /** Flattened stat tree of the simulated system. */
    FlatStats stats;
};

/** Run the synthetic mix on an n x n machine for @p sim_ms of
 *  simulated time. */
inline SimPoint
runMixSim(unsigned n, const MixParams &mix, double sim_ms = 2.0,
          const SystemParams *base = nullptr)
{
    SystemParams sp;
    if (base)
        sp = *base;
    sp.n = n;
    auto wall_start = std::chrono::steady_clock::now();
    MulticubeSystem sys(sp);
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(sim_ms * 1e6));
    wl.stop();
    sys.drain();

    SimPoint out;
    out.efficiency = wl.efficiency();
    out.rowUtil = sys.meanBusUtilization(0);
    out.colUtil = sys.meanBusUtilization(1);
    out.meanLatencyNs = wl.meanLatency();
    out.transactions = wl.totalCompleted();
    out.busOps = sys.totalBusOps();
    out.simEvents = sys.eventQueue().eventsExecuted();
    out.simTicks = sys.eventQueue().now();
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    if (ParallelEngine *eng = sys.parallelEngine()) {
        const ParallelEngine::Telemetry t = eng->telemetry();
        out.parWorkers = static_cast<double>(t.workersEffective);
        out.parProjectedSpeedup = t.projectedSpeedup(t.workersEffective);
        out.parSerialFracEvents = t.serialFracEvents();
        out.parSerialEventsPerWindow = t.serialEventsPerWindow();
        out.parSerialNsPerWindow = t.serialNsPerWindow();
        out.parPeakRssBytes = static_cast<double>(t.peakRssBytes);
    }
    sys.statistics().flatten(out.stats);
    return out;
}

/** MVA solve for the same configuration. */
inline MvaResult
runMva(unsigned n, double rate, const MvaParams *base = nullptr)
{
    MvaParams p;
    if (base)
        p = *base;
    p.n = n;
    p.requestsPerMs = rate;
    return MvaModel(p).solve();
}

/** Flat name->value metrics of one bench point. */
using Metrics = std::map<std::string, double>;

/** @p p's headline metrics plus its stat tree as a Metrics map. */
inline Metrics
toMetrics(const SimPoint &p)
{
    Metrics m(p.stats.begin(), p.stats.end());
    m["efficiency"] = p.efficiency;
    m["row_util"] = p.rowUtil;
    m["col_util"] = p.colUtil;
    m["mean_latency_ns"] = p.meanLatencyNs;
    m["transactions"] = static_cast<double>(p.transactions);
    m["bus_ops"] = static_cast<double>(p.busOps);
    m["wall_seconds"] = p.wallSeconds;
    m["sim_events"] = static_cast<double>(p.simEvents);
    m["sim_ticks"] = static_cast<double>(p.simTicks);
    if (p.parWorkers > 0.0) {
        // Parallel-engine run: export the serial-lane-pressure columns
        // perf_check.py reports next to the realized speedup.
        m["par_workers"] = p.parWorkers;
        m["par_projected_speedup"] = p.parProjectedSpeedup;
        m["par_serial_frac_events"] = p.parSerialFracEvents;
        m["par_serial_events_per_window"] = p.parSerialEventsPerWindow;
        m["par_serial_ns_per_window"] = p.parSerialNsPerWindow;
        m["par_peak_rss_bytes"] = p.parPeakRssBytes;
    }
    return m;
}

/**
 * The per-binary registry of declared sweep points.
 *
 * declare() (usually at static-init) associates a label with a thunk
 * that computes the point's Metrics; computeAll() — called by
 * MCUBE_BENCH_MAIN before benchmarks run — fans every declared point
 * across a SweepRunner; get() returns the memoized result, computing
 * everything on first use as a fallback. Looking up a label that was
 * never declared is a hard error — a silent default would record
 * wrong numbers.
 */
class SweepCache
{
  public:
    static SweepCache &
    instance()
    {
        static SweepCache cache;
        return cache;
    }

    /** Declared points so far — the seed-derivation index of the next
     *  declarePoint/declareMixSim call. */
    std::size_t size() const { return points.size(); }

    /** Register @p fn under @p label (first declaration wins). */
    void
    declare(const std::string &label, std::function<Metrics()> fn)
    {
        if (index.count(label))
            return;
        index[label] = points.size();
        points.push_back(Point{label, std::move(fn), {}, false});
    }

    /**
     * Compute every declared-but-uncomputed point, in parallel.
     *
     * With MCUBE_BENCH_JOURNAL=<file> set, completed points append to
     * a run::WorkJournal keyed by the declared label set + git
     * revision: a re-run of an interrupted bench loads journaled
     * points instead of re-simulating them. A SIGINT/SIGTERM during
     * the sweep stops dispatch (in-flight points finish and are
     * journaled); MCUBE_BENCH_MAIN then exits 128+signal instead of
     * benchmarking against a partial cache.
     */
    void
    computeAll()
    {
        computed = true;

        run::WorkJournal journal;
        const char *jpath = std::getenv("MCUBE_BENCH_JOURNAL");
        if (jpath && *jpath) {
            std::string ident = "bench";
            for (const auto &p : points)
                ident += "|" + p.label;
            ident += "|rev=" + run::gitRevision();
            Json hdr = Json::object();
            hdr.set("tool", "bench");
            hdr.set("points",
                    static_cast<std::uint64_t>(points.size()));
            std::string err;
            if (!journal.open(jpath, run::WorkJournal::keyOf(ident),
                              hdr, &err)) {
                std::fprintf(stderr,
                             "bench_util: journal: %s (continuing "
                             "without a journal)\n",
                             err.c_str());
            } else {
                for (auto &p : points) {
                    const Json *rec = journal.find(p.label);
                    if (!rec || !rec->isObject())
                        continue;
                    p.result.clear();
                    for (const auto &[k, v] : rec->members())
                        p.result[k] = v.asDouble();
                    p.done = true;
                }
            }
        }

        sweep::SweepRunner runner(jobs());
        runner.forEach(
            points.size(),
            [this, &journal](std::size_t i) {
                if (points[i].done)
                    return;
                points[i].result = points[i].fn();
                points[i].done = true;
                if (journal.isOpen()) {
                    Json m = Json::object();
                    for (const auto &[k, v] : points[i].result)
                        m.set(k, v);
                    journal.record(points[i].label, std::move(m));
                }
            },
            [] { return run::GracefulShutdown::requested(); });

        if (journal.isOpen() && !run::GracefulShutdown::requested())
            journal.finish();
    }

    /** The metrics of @p label (see class comment). */
    const Metrics &
    get(const std::string &label)
    {
        if (!computed)
            computeAll();
        auto it = index.find(label);
        if (it == index.end()) {
            std::fprintf(stderr,
                         "bench_util: sweep point '%s' was never "
                         "declared\n",
                         label.c_str());
            std::abort();
        }
        Point &p = points[it->second];
        if (!p.done) {
            p.result = p.fn();
            p.done = true;
        }
        return p.result;
    }

    /** Worker count: --jobs / MCUBE_BENCH_JOBS, 0 = all hw threads. */
    unsigned
    jobs() const
    {
        if (_jobs != UINT_MAX)
            return sweep::resolveJobs(_jobs);
        if (const char *env = std::getenv("MCUBE_BENCH_JOBS"))
            return sweep::resolveJobs(
                static_cast<unsigned>(std::atoi(env)));
        return sweep::resolveJobs(0);
    }

    void setJobs(unsigned j) { _jobs = j; }

    /**
     * Strip `--jobs=N` (and `-j N` / `-jN`) from the argument vector
     * before Google Benchmark sees it. @return the new argc.
     */
    int
    stripJobsFlag(int argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (std::strncmp(a, "--jobs=", 7) == 0) {
                setJobs(static_cast<unsigned>(std::atoi(a + 7)));
            } else if (std::strcmp(a, "-j") == 0 && i + 1 < argc) {
                setJobs(static_cast<unsigned>(std::atoi(argv[++i])));
            } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
                setJobs(static_cast<unsigned>(std::atoi(a + 2)));
            } else {
                argv[out++] = argv[i];
            }
        }
        argv[out] = nullptr;
        return out;
    }

  private:
    struct Point
    {
        std::string label;
        std::function<Metrics()> fn;
        Metrics result;
        bool done = false;
    };

    SweepCache() = default;

    std::vector<Point> points;
    std::map<std::string, std::size_t> index;
    bool computed = false;
    unsigned _jobs = UINT_MAX;  //!< UINT_MAX = not set on command line
};

/**
 * Declare a runMixSim point under @p label. The point's system and
 * workload seeds are derived from (configured base seed, declaration
 * index), so every point of a sweep runs an independent — but fully
 * reproducible — stream for any job count.
 *
 * @p seed_index overrides the declaration index used for seed
 * derivation: an A-B pair (e.g. snoop filter on/off) passes its
 * partner's index so both points simulate the bit-identical run and
 * differ only in the toggled knob.
 */
inline void
declareMixSim(const std::string &label, unsigned n,
              const MixParams &mix, double sim_ms = 2.0,
              const SystemParams *base = nullptr,
              std::uint64_t seed_index = std::uint64_t(-1))
{
    SystemParams sp;
    if (base)
        sp = *base;
    const std::uint64_t idx = seed_index != std::uint64_t(-1)
                                  ? seed_index
                                  : SweepCache::instance().size();
    sp.seed = sweep::pointSeed(sp.seed, idx);
    MixParams m = mix;
    m.seed = sweep::pointSeed(m.seed, idx);
    SweepCache::instance().declare(label, [label, n, m, sim_ms, sp] {
        return toMetrics(runMixSim(n, m, sim_ms, &sp));
    });
}

/** Declare an arbitrary point computed by @p fn under @p label. The
 *  point's wall time is measured and added as "wall_seconds" (unless
 *  @p fn already reports one, as runMixSim does). */
inline void
declarePoint(const std::string &label, std::function<Metrics()> fn)
{
    SweepCache::instance().declare(
        label, [fn = std::move(fn)]() -> Metrics {
            auto t0 = std::chrono::steady_clock::now();
            Metrics m = fn();
            m.emplace(
                "wall_seconds",
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            return m;
        });
}

/** Fetch @p label's metrics (parallel-precomputed on first use). */
inline const Metrics &
sweepPoint(const std::string &label)
{
    return SweepCache::instance().get(label);
}

/**
 * Machine-readable bench-result registry. record() points during the
 * run; each record() rewrites the owning bench's BENCH_<bench>.json
 * through a temp file and an atomic rename, so a crashing or aborted
 * bench loses nothing already recorded and readers never see a
 * partial file.
 */
class BenchJson
{
  public:
    static BenchJson &
    instance()
    {
        static BenchJson reg;
        return reg;
    }

    void
    record(const std::string &bench, const std::string &label,
           Metrics metrics)
    {
        std::lock_guard<std::mutex> g(lock);
        data[bench][label] = std::move(metrics);
        flush(bench);
    }

    /** Record @p p under @p label, stat tree included. */
    void
    record(const std::string &bench, const std::string &label,
           const SimPoint &p)
    {
        record(bench, label, toMetrics(p));
    }

  private:
    BenchJson() = default;

    /** Write BENCH_<bench>.json atomically (temp file + rename). */
    void
    flush(const std::string &bench)
    {
        const std::string final_name = "BENCH_" + bench + ".json";
        const std::string tmp_name = final_name + ".tmp";
        {
            std::ofstream os(tmp_name,
                             std::ios::out | std::ios::trunc);
            if (!os)
                return;
            // Round-trippable doubles: a dashboard diffing artifacts
            // must see the exact values, not 6-digit approximations.
            os.precision(std::numeric_limits<double>::max_digits10);
            os << "{\n  \"bench\": \"" << bench << "\",\n"
               << "  \"git_rev\": \"" << gitRev() << "\",\n"
               << "  \"points\": {";
            const char *psep = "\n";
            for (const auto &[label, metrics] : data[bench]) {
                os << psep << "    \"" << label << "\": {";
                const char *msep = "";
                for (const auto &[name, value] : metrics) {
                    os << msep << "\n      \"" << name
                       << "\": " << value;
                    msep = ",";
                }
                os << "\n    }";
                psep = ",\n";
            }
            os << "\n  }\n}\n";
            if (!os.flush())
                return;
        }
        std::rename(tmp_name.c_str(), final_name.c_str());
    }

    /** Best-effort HEAD revision (cached); "unknown" outside git. */
    const std::string &
    gitRev()
    {
        if (!revCached) {
            revCached = true;
            if (FILE *p = popen("git rev-parse HEAD 2>/dev/null",
                                "r")) {
                char buf[64] = {};
                if (fgets(buf, sizeof(buf), p)) {
                    rev.assign(buf);
                    while (!rev.empty()
                           && (rev.back() == '\n'
                               || rev.back() == '\r'))
                        rev.pop_back();
                    if (rev.empty())
                        rev = "unknown";
                }
                pclose(p);
            }
        }
        return rev;
    }

    std::mutex lock;
    std::string rev = "unknown";
    bool revCached = false;
    std::map<std::string, std::map<std::string, Metrics>> data;
};

} // namespace mcube::bench

/**
 * Bench entry point: arms crash diagnostics and graceful shutdown,
 * strips --jobs, precomputes every declared sweep point across the
 * worker pool (journal-resumable via MCUBE_BENCH_JOURNAL, see
 * SweepCache::computeAll), then hands over to Google Benchmark. An
 * interrupt during the precompute exits 128+signal after the
 * in-flight points drain — BENCH json and the journal keep everything
 * already computed.
 */
#define MCUBE_BENCH_MAIN()                                                  \
    int main(int argc, char **argv)                                         \
    {                                                                       \
        ::mcube::run::installCrashHandler(                                  \
            argv[0] ? argv[0] : "bench");                                   \
        ::mcube::run::GracefulShutdown::install();                          \
        argc = ::mcube::bench::SweepCache::instance().stripJobsFlag(        \
            argc, argv);                                                    \
        ::benchmark::Initialize(&argc, argv);                               \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))           \
            return 1;                                                       \
        ::mcube::bench::SweepCache::instance().computeAll();                \
        if (::mcube::run::GracefulShutdown::requested()) {                  \
            std::fprintf(stderr,                                            \
                         "bench: interrupted during the sweep "             \
                         "precompute; draining cleanly (set "               \
                         "MCUBE_BENCH_JOURNAL to make a re-run skip "       \
                         "the points already computed)\n");                 \
            return ::mcube::run::GracefulShutdown::exitCode();              \
        }                                                                   \
        ::benchmark::RunSpecifiedBenchmarks();                              \
        ::benchmark::Shutdown();                                            \
        return 0;                                                           \
    }                                                                       \
    int mcube_bench_main_anchor_ = 0

#endif // MCUBE_BENCH_BENCH_UTIL_HH
