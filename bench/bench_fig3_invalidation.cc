/**
 * @file
 * Experiment E2 — Figure 3: "The Effect of Invalidations on
 * Performance with 1K Processors". Efficiency vs request rate with
 * the fraction of write misses to shared (unmodified) data swept over
 * 10..50 percent; other parameters as in Figure 2.
 *
 * Expected shape (paper): curves ordered 10% (top) to 50% (bottom);
 * at light load (>= ~90% efficiency) the invalidation effect is very
 * small, growing as rates push the buses toward saturation.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSimInvPct = {10, 30, 50};
const std::vector<std::int64_t> kSimRates = {10, 25, 40};

std::string
simLabel(int inv_pct, int rate)
{
    return "sim_inv" + std::to_string(inv_pct) + "_r"
         + std::to_string(rate);
}

MvaParams
withInvalidation(double inv)
{
    MvaParams p;
    p.fracWriteUnmod = inv;
    p.fracReadUnmod = 0.8 - inv;  // keep P(unmodified) = 0.8
    return p;
}

const bool kDeclared = [] {
    for (std::int64_t inv_pct : kSimInvPct) {
        for (std::int64_t rate : kSimRates) {
            MixParams mix;
            mix.requestsPerMs = static_cast<double>(rate);
            mix.fracWriteUnmod = static_cast<double>(inv_pct) / 100.0;
            mix.fracReadUnmod = 0.8 - mix.fracWriteUnmod;
            declareMixSim(simLabel(static_cast<int>(inv_pct),
                                   static_cast<int>(rate)),
                          8, mix, 2.0);
        }
    }
    return true;
}();

void
BM_Fig3_Mva(benchmark::State &state)
{
    double inv = static_cast<double>(state.range(0)) / 100.0;
    double rate = static_cast<double>(state.range(1));
    MvaParams p = withInvalidation(inv);
    MvaResult r{};
    for (auto _ : state)
        r = runMva(32, rate, &p);
    state.counters["efficiency"] = r.efficiency;
    state.counters["row_util"] = r.rowUtilization;
}

void
BM_Fig3_Sim(benchmark::State &state)
{
    int inv_pct = static_cast<int>(state.range(0));
    int rate = static_cast<int>(state.range(1));
    const std::string label = simLabel(inv_pct, rate);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["row_util"] = m.at("row_util");
    BenchJson::instance().record("fig3_invalidation", label, m);
}

} // namespace

BENCHMARK(BM_Fig3_Mva)
    ->ArgNames({"inv_pct", "req_per_ms"})
    ->ArgsProduct({{10, 20, 30, 40, 50},
                   {1, 5, 10, 15, 20, 25, 30, 40, 50}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Fig3_Sim)
    ->ArgNames({"inv_pct", "req_per_ms"})
    ->ArgsProduct({kSimInvPct, kSimRates})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
