/**
 * @file
 * Experiment E2 — Figure 3: "The Effect of Invalidations on
 * Performance with 1K Processors". Efficiency vs request rate with
 * the fraction of write misses to shared (unmodified) data swept over
 * 10..50 percent; other parameters as in Figure 2.
 *
 * Expected shape (paper): curves ordered 10% (top) to 50% (bottom);
 * at light load (>= ~90% efficiency) the invalidation effect is very
 * small, growing as rates push the buses toward saturation.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

MvaParams
withInvalidation(double inv)
{
    MvaParams p;
    p.fracWriteUnmod = inv;
    p.fracReadUnmod = 0.8 - inv;  // keep P(unmodified) = 0.8
    return p;
}

void
BM_Fig3_Mva(benchmark::State &state)
{
    double inv = static_cast<double>(state.range(0)) / 100.0;
    double rate = static_cast<double>(state.range(1));
    MvaParams p = withInvalidation(inv);
    MvaResult r{};
    for (auto _ : state)
        r = runMva(32, rate, &p);
    state.counters["efficiency"] = r.efficiency;
    state.counters["row_util"] = r.rowUtilization;
}

void
BM_Fig3_Sim(benchmark::State &state)
{
    double inv = static_cast<double>(state.range(0)) / 100.0;
    double rate = static_cast<double>(state.range(1));
    MixParams mix;
    mix.requestsPerMs = rate;
    mix.fracWriteUnmod = inv;
    mix.fracReadUnmod = 0.8 - inv;
    SimPoint pt{};
    for (auto _ : state)
        pt = runMixSim(8, mix, 2.0);
    state.counters["efficiency"] = pt.efficiency;
    state.counters["row_util"] = pt.rowUtil;
}

} // namespace

BENCHMARK(BM_Fig3_Mva)
    ->ArgNames({"inv_pct", "req_per_ms"})
    ->ArgsProduct({{10, 20, 30, 40, 50},
                   {1, 5, 10, 15, 20, 25, 30, 40, 50}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Fig3_Sim)
    ->ArgNames({"inv_pct", "req_per_ms"})
    ->ArgsProduct({{10, 30, 50}, {10, 25, 40}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
