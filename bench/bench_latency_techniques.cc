/**
 * @file
 * Experiment E6 — Section 5 "Techniques for Reducing Bus Latency":
 * requested-word-first, cut-through forwarding of the second hop, and
 * splitting the line into small fixed-size pieces, across block
 * sizes. The MVA reports raw (unloaded) transaction latency and
 * loaded efficiency; the event simulator cross-checks cut-through
 * with its native bus support.
 *
 * Paper expectation: the two forwarding techniques mostly eliminate
 * one full transfer-block latency each; pieces trade extra header
 * occupancy for latency; the win matters most for large blocks.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kCutFlags = {0, 1};
const std::vector<std::int64_t> kCutBlocks = {16, 64};
// (piece_words, block_words) points of the pieces cross-check.
const std::vector<std::pair<unsigned, unsigned>> kPiecePoints = {
    {0, 64}, {4, 64}, {8, 64}};

std::string
cutLabel(bool cut, unsigned block)
{
    return std::string("sim_cut") + (cut ? "1" : "0") + "_b"
         + std::to_string(block);
}

std::string
pieceLabel(unsigned piece, unsigned block)
{
    return "sim_piece" + std::to_string(piece) + "_b"
         + std::to_string(block);
}

const bool kDeclared = [] {
    MixParams mix;
    mix.requestsPerMs = 15.0;
    for (std::int64_t cut : kCutFlags) {
        for (std::int64_t block : kCutBlocks) {
            SystemParams sp;
            sp.bus.blockWords = static_cast<unsigned>(block);
            sp.bus.cutThrough = cut != 0;
            declareMixSim(cutLabel(cut != 0,
                                   static_cast<unsigned>(block)),
                          8, mix, 2.0, &sp);
        }
    }
    for (auto [piece, block] : kPiecePoints) {
        SystemParams sp;
        sp.bus.blockWords = block;
        sp.bus.pieceWords = piece;
        declareMixSim(pieceLabel(piece, block), 8, mix, 2.0, &sp);
    }
    return true;
}();

void
BM_Technique_Mva(benchmark::State &state)
{
    int tech = static_cast<int>(state.range(0));
    unsigned block = static_cast<unsigned>(state.range(1));
    MvaParams p;
    p.blockWords = block;
    if (tech == 4)
        p.pieceWords = 4;
    else
        p.technique = static_cast<LatencyTechnique>(tech);

    MvaResult r{};
    double raw = 0.0;
    for (auto _ : state) {
        MvaModel m(p);
        r = m.solve();
        raw = m.rawLatency();
    }
    state.counters["raw_latency_ns"] = raw;
    state.counters["efficiency"] = r.efficiency;
    state.counters["resp_ns"] = r.responseTimeNs;
}

void
BM_CutThrough_Sim(benchmark::State &state)
{
    bool cut = state.range(0) != 0;
    unsigned block = static_cast<unsigned>(state.range(1));
    const std::string label = cutLabel(cut, block);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["mean_latency_ns"] = m.at("mean_latency_ns");
    state.counters["efficiency"] = m.at("efficiency");
    BenchJson::instance().record("latency_techniques", label, m);
}

/** Simulator counterpart of the "small fixed-size pieces" technique:
 *  pieces trade wire occupancy for requested-word-first delivery. */
void
BM_Pieces_Sim(benchmark::State &state)
{
    unsigned piece = static_cast<unsigned>(state.range(0));
    unsigned block = static_cast<unsigned>(state.range(1));
    const std::string label = pieceLabel(piece, block);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["mean_latency_ns"] = m.at("mean_latency_ns");
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["row_util"] = m.at("row_util");
    BenchJson::instance().record("latency_techniques", label, m);
}

} // namespace

BENCHMARK(BM_Technique_Mva)
    ->ArgNames({"tech_none0_rwf1_cut2_both3_pieces4", "block_words"})
    ->ArgsProduct({{0, 1, 2, 3, 4}, {8, 16, 32, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_CutThrough_Sim)
    ->ArgNames({"cut_through", "block_words"})
    ->ArgsProduct({kCutFlags, kCutBlocks})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Pieces_Sim)
    ->ArgNames({"piece_words", "block_words"})
    ->Args({0, 64})
    ->Args({4, 64})
    ->Args({8, 64})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
