/**
 * @file
 * Experiment E9 — ablations of the design choices the paper calls
 * out:
 *
 *   snarfing     Section 3's passive re-acquisition of recently held
 *                lines: measured on a read-heavy workload over a hot
 *                shared set (snarfs convert future misses into hits);
 *   ALLOCATE     the write-whole-line hint (Section 3): dataless
 *                replies cut data transfers for producer patterns;
 *   MLT size     footnote 7: an undersized modified line table forces
 *                overflow writebacks;
 *   signal drop  "Timing Considerations": controllers may discard
 *                requests; the valid-bit bounce recovers, for a
 *                latency (not correctness) cost.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.hh"
#include "core/checker.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

/** Read-heavy hot-set workload where every node repeatedly reads a
 *  small set of lines that one node periodically rewrites. */
void
BM_Snarfing(benchmark::State &state)
{
    bool snarf = state.range(0) != 0;
    std::uint64_t misses = 0, snarfs = 0, ops = 0;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        p.ctrl.enableSnarfing = snarf;
        MulticubeSystem sys(p);
        EventQueue &eq = sys.eventQueue();

        // One writer dirties 8 hot lines; then all nodes read them in
        // waves (invalidation -> re-read), for several rounds.
        for (unsigned round = 0; round < 12; ++round) {
            for (Addr a = 0; a < 8; ++a) {
                sys.node(0).write(a, round * 8 + a + 1,
                                  [](const TxnResult &) {});
                sys.drain();
            }
            for (NodeId id = 1; id < sys.numNodes(); ++id) {
                for (Addr a = 0; a < 8; ++a) {
                    std::uint64_t tok = 0;
                    sys.node(id).read(a, tok, [](const TxnResult &) {});
                    sys.drain();
                }
            }
        }
        (void)eq;
        misses = 0;
        snarfs = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id) {
            misses += sys.node(id).misses();
            snarfs += sys.node(id).snarfs();
        }
        ops = sys.totalBusOps();
    }
    state.counters["misses"] = static_cast<double>(misses);
    state.counters["snarfs"] = static_cast<double>(snarfs);
    state.counters["bus_ops"] = static_cast<double>(ops);
}

/** Producer writing whole lines: ALLOCATE vs plain READ-MOD. */
void
BM_AllocateHint(benchmark::State &state)
{
    bool use_allocate = state.range(0) != 0;
    std::uint64_t data_ops = 0, total_ops = 0;
    Tick elapsed = 0;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        MulticubeSystem sys(p);
        // A consumer first reads the lines (so they are shared), then
        // the producer overwrites all of them.
        for (Addr a = 0; a < 32; ++a) {
            std::uint64_t tok = 0;
            sys.node(5).read(a, tok, [](const TxnResult &) {});
            sys.drain();
        }
        Tick t0 = sys.eventQueue().now();
        for (Addr a = 0; a < 32; ++a) {
            if (use_allocate)
                sys.node(10).writeAllocate(a, a + 1,
                                           [](const TxnResult &) {});
            else
                sys.node(10).write(a, a + 1, [](const TxnResult &) {});
            sys.drain();
        }
        elapsed = sys.eventQueue().now() - t0;
        total_ops = sys.totalBusOps();
        data_ops = 0;
        for (unsigned i = 0; i < sys.n(); ++i) {
            data_ops += sys.rowBus(i).opsDelivered();
            data_ops += sys.colBus(i).opsDelivered();
        }
    }
    state.counters["elapsed_ns"] = static_cast<double>(elapsed);
    state.counters["total_ops"] = static_cast<double>(total_ops);
    (void)data_ops;
}

/** MLT sizing: overflow writebacks vs table capacity. */
void
BM_MltSize(benchmark::State &state)
{
    unsigned sets = static_cast<unsigned>(state.range(0));
    std::uint64_t overflows = 0, ops = 0;
    double eff = 0.0;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        p.ctrl.mlt = {sets, 2};
        MulticubeSystem sys(p);
        MixParams mix;
        mix.requestsPerMs = 40.0;
        mix.fracReadUnmod = 0.3;
        mix.fracReadMod = 0.1;
        mix.fracWriteUnmod = 0.5;  // write-heavy: many table entries
        mix.fracWriteMod = 0.1;
        MixWorkload wl(sys, mix);
        wl.start();
        sys.run(2'000'000);
        wl.stop();
        sys.drain();
        overflows = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id)
            overflows += sys.node(id).mltOverflows();
        ops = sys.totalBusOps();
        eff = wl.efficiency();
    }
    state.counters["mlt_entries"] = static_cast<double>(sets) * 2;
    state.counters["overflow_wbs"] = static_cast<double>(overflows);
    state.counters["bus_ops"] = static_cast<double>(ops);
    state.counters["efficiency"] = eff;
}

/** ALLOCATE early write (Section 3's optional refinement): the
 *  processor keeps writing while the acknowledges drain in the
 *  background, pipelining a producer burst. Measured as the time the
 *  processor is blocked across a 32-line burst. */
void
BM_AllocateEarlyWrite(benchmark::State &state)
{
    bool early = state.range(0) != 0;
    Tick blocked = 0;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        p.ctrl.allocateEarlyWrite = early;
        MulticubeSystem sys(p);
        SnoopController &nd = sys.node(1, 2);
        blocked = 0;
        for (Addr a = 0; a < 32; ++a) {
            Tick t0 = sys.eventQueue().now();
            bool done = false;
            nd.writeAllocate(a, a + 1,
                             [&](const TxnResult &) { done = true; });
            while (!done)
                sys.eventQueue().run(1);
            blocked += sys.eventQueue().now() - t0;
            // With early ack the controller may still be busy; wait
            // for it before the next line (models back-to-back use).
            while (nd.busy())
                sys.eventQueue().run(1);
        }
        sys.drain();
    }
    state.counters["proc_blocked_ns"] = static_cast<double>(blocked);
}

/** False sharing (Section 5, footnote 6): two nodes alternately
 *  write "different parts of the same coherency block" — at line
 *  granularity that is the same block, so it ping-pongs between the
 *  caches; with data placed on separate blocks both writers stay
 *  local after the first miss. */
void
BM_FalseSharing(benchmark::State &state)
{
    bool shared_block = state.range(0) != 0;
    std::uint64_t ops = 0;
    Tick elapsed = 0;
    const unsigned rounds = 64;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        MulticubeSystem sys(p);
        SnoopController &a = sys.node(0, 1);
        SnoopController &b = sys.node(2, 3);
        Addr addr_a = 40;
        Addr addr_b = shared_block ? 40 : 41;
        Tick t0 = sys.eventQueue().now();
        for (unsigned r = 0; r < rounds; ++r) {
            a.write(addr_a, r * 2 + 1, [](const TxnResult &) {});
            sys.drain();
            b.write(addr_b, r * 2 + 2, [](const TxnResult &) {});
            sys.drain();
        }
        elapsed = sys.eventQueue().now() - t0;
        ops = sys.totalBusOps();
    }
    state.counters["bus_ops"] = static_cast<double>(ops);
    state.counters["ns_per_round"] =
        static_cast<double>(elapsed) / rounds;
}

/** Robustness: drop probability vs reissues and latency. */
void
BM_SignalDrops(benchmark::State &state)
{
    double drop = static_cast<double>(state.range(0)) / 100.0;
    std::uint64_t reissues = 0, drops = 0;
    double lat = 0.0, eff = 0.0;
    for (auto _ : state) {
        SystemParams p;
        p.n = 4;
        p.ctrl.dropSignalProb = drop;
        MulticubeSystem sys(p);
        MixParams mix;
        mix.requestsPerMs = 25.0;
        mix.fracReadUnmod = 0.3;
        mix.fracReadMod = 0.35;  // modified-line traffic exercises
        mix.fracWriteUnmod = 0.1;
        mix.fracWriteMod = 0.25;  // ... the dropped-signal path
        MixWorkload wl(sys, mix);
        wl.start();
        sys.run(2'000'000);
        wl.stop();
        sys.drain();
        reissues = 0;
        drops = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id) {
            reissues += sys.node(id).reissues();
            drops += sys.node(id).dropsInjected();
        }
        lat = wl.meanLatency();
        eff = wl.efficiency();
    }
    state.counters["drops"] = static_cast<double>(drops);
    state.counters["reissues"] = static_cast<double>(reissues);
    state.counters["mean_latency_ns"] = lat;
    state.counters["efficiency"] = eff;
}

} // namespace

BENCHMARK(BM_Snarfing)
    ->ArgNames({"snarfing"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AllocateHint)
    ->ArgNames({"allocate"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MltSize)
    ->ArgNames({"mlt_sets"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AllocateEarlyWrite)
    ->ArgNames({"early_write"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FalseSharing)
    ->ArgNames({"same_block"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SignalDrops)
    ->ArgNames({"drop_pct"})
    ->Arg(0)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
