/**
 * @file
 * Experiment E9 — ablations of the design choices the paper calls
 * out:
 *
 *   snarfing     Section 3's passive re-acquisition of recently held
 *                lines: measured on a read-heavy workload over a hot
 *                shared set (snarfs convert future misses into hits);
 *   ALLOCATE     the write-whole-line hint (Section 3): dataless
 *                replies cut data transfers for producer patterns;
 *   MLT size     footnote 7: an undersized modified line table forces
 *                overflow writebacks;
 *   signal drop  "Timing Considerations": controllers may discard
 *                requests; the valid-bit bounce recovers, for a
 *                latency (not correctness) cost.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/checker.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kMltSets = {1, 2, 4, 16, 64};
const std::vector<std::int64_t> kDropPcts = {0, 5, 20, 50};

/** Read-heavy hot-set workload where every node repeatedly reads a
 *  small set of lines that one node periodically rewrites. */
Metrics
runSnarfing(bool snarf)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.enableSnarfing = snarf;
    MulticubeSystem sys(p);

    // One writer dirties 8 hot lines; then all nodes read them in
    // waves (invalidation -> re-read), for several rounds.
    for (unsigned round = 0; round < 12; ++round) {
        for (Addr a = 0; a < 8; ++a) {
            sys.node(0).write(a, round * 8 + a + 1,
                              [](const TxnResult &) {});
            sys.drain();
        }
        for (NodeId id = 1; id < sys.numNodes(); ++id) {
            for (Addr a = 0; a < 8; ++a) {
                std::uint64_t tok = 0;
                sys.node(id).read(a, tok, [](const TxnResult &) {});
                sys.drain();
            }
        }
    }
    double misses = 0, snarfs = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        misses += static_cast<double>(sys.node(id).misses());
        snarfs += static_cast<double>(sys.node(id).snarfs());
    }
    return {{"misses", misses},
            {"snarfs", snarfs},
            {"bus_ops", static_cast<double>(sys.totalBusOps())}};
}

/** Producer writing whole lines: ALLOCATE vs plain READ-MOD. */
Metrics
runAllocateHint(bool use_allocate)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    // A consumer first reads the lines (so they are shared), then
    // the producer overwrites all of them.
    for (Addr a = 0; a < 32; ++a) {
        std::uint64_t tok = 0;
        sys.node(5).read(a, tok, [](const TxnResult &) {});
        sys.drain();
    }
    Tick t0 = sys.eventQueue().now();
    for (Addr a = 0; a < 32; ++a) {
        if (use_allocate)
            sys.node(10).writeAllocate(a, a + 1,
                                       [](const TxnResult &) {});
        else
            sys.node(10).write(a, a + 1, [](const TxnResult &) {});
        sys.drain();
    }
    return {{"elapsed_ns",
             static_cast<double>(sys.eventQueue().now() - t0)},
            {"total_ops", static_cast<double>(sys.totalBusOps())}};
}

/** MLT sizing: overflow writebacks vs table capacity. */
Metrics
runMltSize(unsigned sets)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.mlt = {sets, 2};
    MulticubeSystem sys(p);
    MixParams mix;
    mix.requestsPerMs = 40.0;
    mix.fracReadUnmod = 0.3;
    mix.fracReadMod = 0.1;
    mix.fracWriteUnmod = 0.5;  // write-heavy: many table entries
    mix.fracWriteMod = 0.1;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    double overflows = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        overflows += static_cast<double>(sys.node(id).mltOverflows());
    return {{"mlt_entries", static_cast<double>(sets) * 2},
            {"overflow_wbs", overflows},
            {"bus_ops", static_cast<double>(sys.totalBusOps())},
            {"efficiency", wl.efficiency()}};
}

/** ALLOCATE early write (Section 3's optional refinement): the
 *  processor keeps writing while the acknowledges drain in the
 *  background, pipelining a producer burst. Measured as the time the
 *  processor is blocked across a 32-line burst. */
Metrics
runAllocateEarlyWrite(bool early)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.allocateEarlyWrite = early;
    MulticubeSystem sys(p);
    SnoopController &nd = sys.node(1, 2);
    Tick blocked = 0;
    for (Addr a = 0; a < 32; ++a) {
        Tick t0 = sys.eventQueue().now();
        bool done = false;
        nd.writeAllocate(a, a + 1,
                         [&](const TxnResult &) { done = true; });
        while (!done)
            sys.eventQueue().run(1);
        blocked += sys.eventQueue().now() - t0;
        // With early ack the controller may still be busy; wait
        // for it before the next line (models back-to-back use).
        while (nd.busy())
            sys.eventQueue().run(1);
    }
    sys.drain();
    return {{"proc_blocked_ns", static_cast<double>(blocked)}};
}

/** False sharing (Section 5, footnote 6): two nodes alternately
 *  write "different parts of the same coherency block" — at line
 *  granularity that is the same block, so it ping-pongs between the
 *  caches; with data placed on separate blocks both writers stay
 *  local after the first miss. */
Metrics
runFalseSharing(bool shared_block)
{
    const unsigned rounds = 64;
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    SnoopController &a = sys.node(0, 1);
    SnoopController &b = sys.node(2, 3);
    Addr addr_a = 40;
    Addr addr_b = shared_block ? 40 : 41;
    Tick t0 = sys.eventQueue().now();
    for (unsigned r = 0; r < rounds; ++r) {
        a.write(addr_a, r * 2 + 1, [](const TxnResult &) {});
        sys.drain();
        b.write(addr_b, r * 2 + 2, [](const TxnResult &) {});
        sys.drain();
    }
    Tick elapsed = sys.eventQueue().now() - t0;
    return {{"bus_ops", static_cast<double>(sys.totalBusOps())},
            {"ns_per_round", static_cast<double>(elapsed) / rounds}};
}

/** Robustness: drop probability vs reissues and latency. */
Metrics
runSignalDrops(double drop)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.dropSignalProb = drop;
    MulticubeSystem sys(p);
    MixParams mix;
    mix.requestsPerMs = 25.0;
    mix.fracReadUnmod = 0.3;
    mix.fracReadMod = 0.35;  // modified-line traffic exercises
    mix.fracWriteUnmod = 0.1;
    mix.fracWriteMod = 0.25;  // ... the dropped-signal path
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    double reissues = 0, drops = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        reissues += static_cast<double>(sys.node(id).reissues());
        drops += static_cast<double>(sys.node(id).dropsInjected());
    }
    return {{"drops", drops},
            {"reissues", reissues},
            {"mean_latency_ns", wl.meanLatency()},
            {"efficiency", wl.efficiency()}};
}

const bool kDeclared = [] {
    for (int v : {0, 1}) {
        declarePoint("snarfing" + std::to_string(v),
                     [v] { return runSnarfing(v != 0); });
        declarePoint("allocate" + std::to_string(v),
                     [v] { return runAllocateHint(v != 0); });
        declarePoint("early_write" + std::to_string(v),
                     [v] { return runAllocateEarlyWrite(v != 0); });
        declarePoint("false_sharing" + std::to_string(v),
                     [v] { return runFalseSharing(v != 0); });
    }
    for (std::int64_t sets : kMltSets) {
        declarePoint("mlt_sets" + std::to_string(sets), [sets] {
            return runMltSize(static_cast<unsigned>(sets));
        });
    }
    for (std::int64_t pct : kDropPcts) {
        declarePoint("drop_pct" + std::to_string(pct), [pct] {
            return runSignalDrops(static_cast<double>(pct) / 100.0);
        });
    }
    return true;
}();

/** Shared shape of every ablation benchmark: look the point up,
 *  surface every metric as a counter, record it. */
void
reportPoint(benchmark::State &state, const std::string &label)
{
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    for (const auto &[name, value] : m) {
        if (name != "wall_seconds")
            state.counters[name] = value;
    }
    BenchJson::instance().record("ablations", label, m);
}

void
BM_Snarfing(benchmark::State &state)
{
    reportPoint(state, "snarfing" + std::to_string(state.range(0)));
}

void
BM_AllocateHint(benchmark::State &state)
{
    reportPoint(state, "allocate" + std::to_string(state.range(0)));
}

void
BM_MltSize(benchmark::State &state)
{
    reportPoint(state, "mlt_sets" + std::to_string(state.range(0)));
}

void
BM_AllocateEarlyWrite(benchmark::State &state)
{
    reportPoint(state,
                "early_write" + std::to_string(state.range(0)));
}

void
BM_FalseSharing(benchmark::State &state)
{
    reportPoint(state,
                "false_sharing" + std::to_string(state.range(0)));
}

void
BM_SignalDrops(benchmark::State &state)
{
    reportPoint(state, "drop_pct" + std::to_string(state.range(0)));
}

} // namespace

BENCHMARK(BM_Snarfing)
    ->ArgNames({"snarfing"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AllocateHint)
    ->ArgNames({"allocate"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MltSize)
    ->ArgNames({"mlt_sets"})
    ->ArgsProduct({kMltSets})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AllocateEarlyWrite)
    ->ArgNames({"early_write"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FalseSharing)
    ->ArgNames({"same_block"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SignalDrops)
    ->ArgNames({"drop_pct"})
    ->ArgsProduct({kDropPcts})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
