/**
 * @file
 * Simulator hot-path speed: how fast the event core chews through a
 * representative MixWorkload run, across machine sizes. This is the
 * repo's performance canary — CI's perf-smoke job compares the
 * events_per_sec column of BENCH_simspeed.json against the checked-in
 * baseline (bench/baseline_simspeed.json) and fails on a large
 * regression (see scripts/perf_check.py).
 *
 * Reported per point:
 *
 *   events_per_sec  executed simulation events per host second — the
 *                   primary figure of merit for EventQueue + Bus +
 *                   stats hot-path changes;
 *   ticks_per_sec   simulated nanoseconds per host second;
 *   wall_seconds    host wall clock of the point;
 *   sim_events      total events executed (a *determinism* canary:
 *                   this must not move run-to-run for a fixed seed).
 *
 * Run it with --jobs=1 when timing: parallel workers share the
 * machine and inflate each other's wall clock. (The sim_n64 /
 * *_par points parallelize *inside* one simulation via the
 * window-phased engine instead — that pool is still exclusive under
 * --jobs=1.)
 *
 * Parallel points additionally export the engine's serial-lane
 * telemetry as par_* columns (par_projected_speedup,
 * par_serial_frac_events, par_serial_events_per_window,
 * par_peak_rss_bytes, ...) so perf_check.py can report the realized
 * and Amdahl-projected speedups side by side and the serial-lane
 * pressure trend is diffable across commits.
 *
 * Setting MCUBE_BENCH_N128=1 adds the sim_n128 / sim_n128_t1 pair —
 * a 128x128 machine (16K processors, the paper's headline scale) on
 * the sharded engine. It is env-gated so the ordinary perf-smoke run
 * stays fast; CI's scheduled sim-n128-canary job enables it and gates
 * the pair against bench/baseline_simspeed_n128.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "sim/profiler.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSizes = {8, 16, 32};
constexpr double kRate = 25.0;

std::string
pointLabel(unsigned n)
{
    return "sim_n" + std::to_string(n);
}

void recordPoint(benchmark::State &state, const std::string &label);

/** The n=128 scale canary is opt-in (see the file comment). */
bool
n128Enabled()
{
    const char *e = std::getenv("MCUBE_BENCH_N128");
    return e && *e && std::strcmp(e, "0") != 0;
}

const bool kDeclared = [] {
    std::uint64_t n32_index = 0;
    for (std::int64_t n : kSizes) {
        MixParams mix;
        mix.requestsPerMs = kRate;
        if (n == 32)
            n32_index = SweepCache::instance().size();
        // Size the simulated interval so every point runs for a few
        // hundred ms of wall clock: short points (n=8 finishes 2 ms of
        // sim time in ~30 ms) are dominated by host scheduler noise
        // and make the CI throughput comparison flap.
        declareMixSim(pointLabel(static_cast<unsigned>(n)),
                      static_cast<unsigned>(n), mix,
                      n >= 32 ? 0.5 : (n >= 16 ? 2.0 : 16.0));
    }

    // A-B twin of the largest point with the snoop fast-reject filter
    // disabled. It borrows sim_n32's seed-derivation index, so both
    // points simulate the bit-identical run and differ only in the
    // filter knob: perf_check.py derives the filter-speedup column
    // from the pair and cross-checks that the determinism columns
    // match exactly (the filter must not change simulated results).
    MixParams mix;
    mix.requestsPerMs = kRate;
    SystemParams off;
    off.ctrl.snoopFilter = false;
    declareMixSim("sim_n32_nofilter", 32, mix, 0.5, &off, n32_index);

    // Second A-B twin: the same run with the host self-profiler
    // active (src/sim/profiler.hh). Borrowing sim_n32's index again
    // means the determinism columns must match sim_n32 exactly — the
    // profiler observes the host, never the simulation — while the
    // wall-clock pair measures profiling overhead. perf_check.py
    // checks both, and the prof_* columns land in BENCH_simspeed.json
    // so the coupling trend is diffable across commits.
    declarePoint("sim_n32_prof", [n32_index] {
        MixParams m;
        m.requestsPerMs = kRate;
        SystemParams sp;
        sp.seed = sweep::pointSeed(sp.seed, n32_index);
        m.seed = sweep::pointSeed(m.seed, n32_index);

        SimProfiler prof;
        prof.activate();
        SimPoint p = runMixSim(32, m, 0.5, &sp);
        prof.deactivate();

        Metrics out = toMetrics(p);
        const SimProfiler::Summary s = prof.summary();
        out["prof_wall_ns"] = static_cast<double>(s.wallNs);
        out["prof_events"] = static_cast<double>(s.events);
        out["prof_scopes"] = static_cast<double>(s.scopes);
        out["prof_cross_ops"] = static_cast<double>(s.crossOps);
        out["prof_row_parallel_frac_ns"] = s.row.parallelFracNs;
        out["prof_col_parallel_frac_ns"] = s.col.parallelFracNs;
        out["prof_row_lookahead_ticks"] =
            static_cast<double>(s.row.lookaheadTicks);
        out["prof_col_lookahead_ticks"] =
            static_cast<double>(s.col.lookaheadTicks);
        out["prof_row_speedup_k8"] = s.row.speedupAt(8);
        out["prof_col_speedup_k8"] = s.col.speedupAt(8);
        return out;
    });

    // Parallel single-simulation engine points (docs/PERFORMANCE.md).
    // Each pair (X, X_t1) runs the SAME window-phased engine with a
    // sharded worker pool vs a single worker: the determinism columns
    // must be bit-identical (the engine's contract) and the
    // events_per_sec ratio is the realized parallel speedup
    // perf_check.py gates. The worker count adapts to the host so a
    // small CI runner is not forced to oversubscribe — results do not
    // depend on it, only the speedup does.
    //
    // sim_n64 is the scale canary: a 64x64 machine (4096 processors)
    // at a quarter millisecond of simulated time, sized to finish in
    // seconds on the sharded engine rather than the minutes a naive
    // sequential n=64 sweep point would take at n32's interval.
    const unsigned par_workers = std::max(
        1u, std::min(4u, std::thread::hardware_concurrency()));
    // Each point records its effective worker count as a par_workers
    // column (emitted by toMetrics from the engine telemetry, next to
    // the other par_* serial-lane columns): on a single-core host both
    // arms of a pair collapse to the same configuration, and
    // perf_check.py uses the column to skip the (meaningless,
    // pure-noise) speedup ratio there while still enforcing
    // determinism identity.
    auto declareParSim = [](const std::string &label, unsigned n,
                            MixParams m, double sim_ms,
                            unsigned workers, std::uint64_t idx) {
        declarePoint(label, [n, m, sim_ms, workers, idx]() mutable {
            SystemParams sp;
            sp.simThreads = workers;
            sp.seed = sweep::pointSeed(sp.seed, idx);
            m.seed = sweep::pointSeed(m.seed, idx);
            return toMetrics(runMixSim(n, m, sim_ms, &sp));
        });
    };

    const std::uint64_t n64_index = SweepCache::instance().size();
    declareParSim("sim_n64", 64, mix, 0.25, par_workers, n64_index);
    declareParSim("sim_n64_t1", 64, mix, 0.25, 1, n64_index);

    const std::uint64_t par32_index = SweepCache::instance().size();
    declareParSim("sim_n32_par", 32, mix, 0.5, par_workers,
                  par32_index);
    declareParSim("sim_n32_par_t1", 32, mix, 0.5, 1, par32_index);

    // Opt-in n=128 pair: 16K processors, the paper's headline machine,
    // as a routine sharded-engine run. Declared (and registered as
    // benchmarks) last so enabling it never shifts the seed-derivation
    // indices of the always-on points above. The simulated interval is
    // short — the point of the canary is that the *scale* is routine:
    // it must build, run in minutes, hold determinism across worker
    // counts and keep the realized/projected speedup honest, not chew
    // through milliseconds of simulated time.
    if (n128Enabled()) {
        const std::uint64_t n128_index = SweepCache::instance().size();
        declareParSim("sim_n128", 128, mix, 0.05, par_workers,
                      n128_index);
        declareParSim("sim_n128_t1", 128, mix, 0.05, 1, n128_index);
        for (const char *bm : {"BM_SimSpeedN128", "BM_SimSpeedN128T1"}) {
            const std::string label = std::strstr(bm, "T1")
                                          ? "sim_n128_t1"
                                          : "sim_n128";
            benchmark::RegisterBenchmark(
                bm,
                [label](benchmark::State &st) { recordPoint(st, label); })
                ->Iterations(1)
                ->UseManualTime()
                ->Unit(benchmark::kMillisecond);
        }
    }
    return true;
}();

void
recordPoint(benchmark::State &state, const std::string &label)
{
    const Metrics &m = sweepPoint(label);
    const double wall = m.at("wall_seconds");
    for (auto _ : state)
        state.SetIterationTime(wall);

    Metrics out;
    out["wall_seconds"] = wall;
    out["sim_events"] = m.at("sim_events");
    out["sim_ticks"] = m.at("sim_ticks");
    out["events_per_sec"] =
        wall > 0 ? m.at("sim_events") / wall : 0.0;
    out["ticks_per_sec"] = wall > 0 ? m.at("sim_ticks") / wall : 0.0;
    out["transactions"] = m.at("transactions");
    out["efficiency"] = m.at("efficiency");
    // The prof twin embeds its coupling summary as prof_* columns so
    // the parallelism-readiness trend is diffable across commits, and
    // parallel points carry their par_* serial-lane telemetry —
    // perf_check.py reads par_workers and par_projected_speedup from
    // here, so dropping them would silently disable the speedup gate.
    for (const auto &[name, value] : m)
        if (name.rfind("prof_", 0) == 0 || name.rfind("par_", 0) == 0)
            out[name] = value;

    for (const auto &[name, value] : out)
        state.counters[name] = value;
    BenchJson::instance().record("simspeed", label, out);
}

void
BM_SimSpeed(benchmark::State &state)
{
    recordPoint(state,
                pointLabel(static_cast<unsigned>(state.range(0))));
}

void
BM_SimSpeedNoFilter(benchmark::State &state)
{
    recordPoint(state, "sim_n32_nofilter");
}

void
BM_SimSpeedProf(benchmark::State &state)
{
    recordPoint(state, "sim_n32_prof");
}

void
BM_SimSpeedN64(benchmark::State &state)
{
    recordPoint(state, "sim_n64");
}

void
BM_SimSpeedN64T1(benchmark::State &state)
{
    recordPoint(state, "sim_n64_t1");
}

void
BM_SimSpeedN32Par(benchmark::State &state)
{
    recordPoint(state, "sim_n32_par");
}

void
BM_SimSpeedN32ParT1(benchmark::State &state)
{
    recordPoint(state, "sim_n32_par_t1");
}

} // namespace

BENCHMARK(BM_SimSpeed)
    ->ArgNames({"n"})
    ->ArgsProduct({kSizes})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedNoFilter)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedProf)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedN64)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedN64T1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedN32Par)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedN32ParT1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
