/**
 * @file
 * Simulator hot-path speed: how fast the event core chews through a
 * representative MixWorkload run, across machine sizes. This is the
 * repo's performance canary — CI's perf-smoke job compares the
 * events_per_sec column of BENCH_simspeed.json against the checked-in
 * baseline (bench/baseline_simspeed.json) and fails on a large
 * regression (see scripts/perf_check.py).
 *
 * Reported per point:
 *
 *   events_per_sec  executed simulation events per host second — the
 *                   primary figure of merit for EventQueue + Bus +
 *                   stats hot-path changes;
 *   ticks_per_sec   simulated nanoseconds per host second;
 *   wall_seconds    host wall clock of the point;
 *   sim_events      total events executed (a *determinism* canary:
 *                   this must not move run-to-run for a fixed seed).
 *
 * Run it with --jobs=1 when timing: parallel workers share the
 * machine and inflate each other's wall clock.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSizes = {8, 16, 32};
constexpr double kRate = 25.0;

std::string
pointLabel(unsigned n)
{
    return "sim_n" + std::to_string(n);
}

const bool kDeclared = [] {
    std::uint64_t n32_index = 0;
    for (std::int64_t n : kSizes) {
        MixParams mix;
        mix.requestsPerMs = kRate;
        if (n == 32)
            n32_index = SweepCache::instance().size();
        // Size the simulated interval so every point runs for a few
        // hundred ms of wall clock: short points (n=8 finishes 2 ms of
        // sim time in ~30 ms) are dominated by host scheduler noise
        // and make the CI throughput comparison flap.
        declareMixSim(pointLabel(static_cast<unsigned>(n)),
                      static_cast<unsigned>(n), mix,
                      n >= 32 ? 0.5 : (n >= 16 ? 2.0 : 16.0));
    }

    // A-B twin of the largest point with the snoop fast-reject filter
    // disabled. It borrows sim_n32's seed-derivation index, so both
    // points simulate the bit-identical run and differ only in the
    // filter knob: perf_check.py derives the filter-speedup column
    // from the pair and cross-checks that the determinism columns
    // match exactly (the filter must not change simulated results).
    MixParams mix;
    mix.requestsPerMs = kRate;
    SystemParams off;
    off.ctrl.snoopFilter = false;
    declareMixSim("sim_n32_nofilter", 32, mix, 0.5, &off, n32_index);
    return true;
}();

void
recordPoint(benchmark::State &state, const std::string &label)
{
    const Metrics &m = sweepPoint(label);
    const double wall = m.at("wall_seconds");
    for (auto _ : state)
        state.SetIterationTime(wall);

    Metrics out;
    out["wall_seconds"] = wall;
    out["sim_events"] = m.at("sim_events");
    out["sim_ticks"] = m.at("sim_ticks");
    out["events_per_sec"] =
        wall > 0 ? m.at("sim_events") / wall : 0.0;
    out["ticks_per_sec"] = wall > 0 ? m.at("sim_ticks") / wall : 0.0;
    out["transactions"] = m.at("transactions");
    out["efficiency"] = m.at("efficiency");

    for (const auto &[name, value] : out)
        state.counters[name] = value;
    BenchJson::instance().record("simspeed", label, out);
}

void
BM_SimSpeed(benchmark::State &state)
{
    recordPoint(state,
                pointLabel(static_cast<unsigned>(state.range(0))));
}

void
BM_SimSpeedNoFilter(benchmark::State &state)
{
    recordPoint(state, "sim_n32_nofilter");
}

} // namespace

BENCHMARK(BM_SimSpeed)
    ->ArgNames({"n"})
    ->ArgsProduct({kSizes})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SimSpeedNoFilter)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
