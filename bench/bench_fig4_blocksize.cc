/**
 * @file
 * Experiment E3 — Figure 4: "Effect of Block Size on Performance with
 * 1K Processors". Block sizes 4..64 bus words under three couplings
 * between block size and bus request rate:
 *
 *   fixed    the vertical dashed line: doubling the block does not
 *            change the request rate (bigger blocks only cost);
 *   halving  the sloping dashed line: doubling the block halves the
 *            request rate (bigger blocks only help);
 *   sqrt     a "more reasonable relationship" between the extremes,
 *            for which an interior block size is optimal (the paper
 *            argues 16 or 32 words).
 *
 * The simulation cross-check varies the bus blockWords with the same
 * couplings on a 64-processor machine.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSimCouplings = {0, 1, 2};
const std::vector<std::int64_t> kSimBlocks = {4, 16, 64};

double
coupledRate(int coupling, unsigned block)
{
    // Rates are normalised so block = 16 always runs at 25 req/ms.
    switch (coupling) {
      case 0:  // fixed
        return 25.0;
      case 1:  // halving
        return 25.0 * 16.0 / block;
      default: // sqrt
        return 25.0 * 4.0 / std::sqrt(static_cast<double>(block));
    }
}

std::string
simLabel(int coupling, unsigned block)
{
    return "sim_c" + std::to_string(coupling) + "_b"
         + std::to_string(block);
}

const bool kDeclared = [] {
    for (std::int64_t coupling : kSimCouplings) {
        for (std::int64_t block : kSimBlocks) {
            SystemParams sp;
            sp.bus.blockWords = static_cast<unsigned>(block);
            MixParams mix;
            mix.requestsPerMs =
                coupledRate(static_cast<int>(coupling),
                            static_cast<unsigned>(block));
            declareMixSim(simLabel(static_cast<int>(coupling),
                                   static_cast<unsigned>(block)),
                          8, mix, 2.0, &sp);
        }
    }
    return true;
}();

void
BM_Fig4_Mva(benchmark::State &state)
{
    int coupling = static_cast<int>(state.range(0));
    unsigned block = static_cast<unsigned>(state.range(1));
    MvaParams p;
    p.blockWords = block;
    p.requestsPerMs = coupledRate(coupling, block);
    MvaResult r{};
    for (auto _ : state)
        r = runMva(32, p.requestsPerMs, &p);
    state.counters["efficiency"] = r.efficiency;
    state.counters["req_per_ms"] = p.requestsPerMs;
    state.counters["resp_ns"] = r.responseTimeNs;
}

void
BM_Fig4_Sim(benchmark::State &state)
{
    int coupling = static_cast<int>(state.range(0));
    unsigned block = static_cast<unsigned>(state.range(1));
    const std::string label = simLabel(coupling, block);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["req_per_ms"] = coupledRate(coupling, block);
    state.counters["lat_ns"] = m.at("mean_latency_ns");
    BenchJson::instance().record("fig4_blocksize", label, m);
}

} // namespace

BENCHMARK(BM_Fig4_Mva)
    ->ArgNames({"coupling", "block_words"})
    ->ArgsProduct({{0, 1, 2}, {4, 8, 16, 32, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Fig4_Sim)
    ->ArgNames({"coupling", "block_words"})
    ->ArgsProduct({kSimCouplings, kSimBlocks})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
