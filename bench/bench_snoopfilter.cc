/**
 * @file
 * Snoop fast-reject filter A-B bench: the same MixWorkload run, per
 * machine size, with the filter enabled and disabled. Each pair
 * shares its seed-derivation index, so the two runs are required to
 * be bit-identical in simulated results — this bench hard-fails on
 * any divergence in the determinism columns, which would mean a
 * reject skipped an observable snoop.
 *
 * Reported per size:
 *
 *   events_per_sec_{on,off}  host-throughput of each arm;
 *   filter_speedup           on / off — the figure perf_check.py
 *                            watches so the filter cannot silently
 *                            stop paying for itself;
 *   filter_reject_fraction   share of snoop decisions fast-rejected.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSizes = {8, 16, 32};
constexpr double kRate = 25.0;

std::string
onLabel(unsigned n)
{
    return "filter_on_n" + std::to_string(n);
}

std::string
offLabel(unsigned n)
{
    return "filter_off_n" + std::to_string(n);
}

double
simMsFor(std::int64_t n)
{
    return n >= 32 ? 0.5 : (n >= 16 ? 2.0 : 8.0);
}

const bool kDeclared = [] {
    for (std::int64_t n : kSizes) {
        MixParams mix;
        mix.requestsPerMs = kRate;
        const std::uint64_t idx = SweepCache::instance().size();
        declareMixSim(onLabel(static_cast<unsigned>(n)),
                      static_cast<unsigned>(n), mix, simMsFor(n));
        SystemParams off;
        off.ctrl.snoopFilter = false;
        declareMixSim(offLabel(static_cast<unsigned>(n)),
                      static_cast<unsigned>(n), mix, simMsFor(n), &off,
                      idx);
    }
    return true;
}();

/** Exact-match columns: the filter may only change wall clock. */
const char *const kDeterminismKeys[] = {"sim_events", "sim_ticks",
                                        "transactions", "efficiency"};

void
BM_SnoopFilterAB(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    const Metrics &on = sweepPoint(onLabel(n));
    const Metrics &off = sweepPoint(offLabel(n));

    for (const char *key : kDeterminismKeys) {
        if (on.at(key) != off.at(key)) {
            std::fprintf(stderr,
                         "bench_snoopfilter: DETERMINISM VIOLATION at "
                         "n=%u: %s differs with the filter on (%.17g) "
                         "vs off (%.17g)\n",
                         n, key, on.at(key), off.at(key));
            std::abort();
        }
    }

    const double wall_on = on.at("wall_seconds");
    const double wall_off = off.at("wall_seconds");
    for (auto _ : state)
        state.SetIterationTime(wall_on);

    double eps_on = wall_on > 0 ? on.at("sim_events") / wall_on : 0.0;
    double eps_off =
        wall_off > 0 ? off.at("sim_events") / wall_off : 0.0;

    double hits = 0.0, rejects = 0.0;
    for (const auto &[name, value] : on) {
        if (name.size() >= 11
            && name.compare(name.size() - 11, 11, "filter_hits") == 0)
            hits += value;
        if (name.size() >= 14
            && name.compare(name.size() - 14, 14, "filter_rejects")
                   == 0)
            rejects += value;
    }

    Metrics out;
    out["sim_events"] = on.at("sim_events");
    out["sim_ticks"] = on.at("sim_ticks");
    out["transactions"] = on.at("transactions");
    out["efficiency"] = on.at("efficiency");
    out["wall_seconds_on"] = wall_on;
    out["wall_seconds_off"] = wall_off;
    out["events_per_sec_on"] = eps_on;
    out["events_per_sec_off"] = eps_off;
    out["filter_speedup"] = eps_off > 0 ? eps_on / eps_off : 0.0;
    out["filter_reject_fraction"] =
        hits + rejects > 0 ? rejects / (hits + rejects) : 0.0;

    for (const auto &[name, value] : out)
        state.counters[name] = value;
    BenchJson::instance().record("snoopfilter",
                                 "n" + std::to_string(n), out);
}

} // namespace

BENCHMARK(BM_SnoopFilterAB)
    ->ArgNames({"n"})
    ->ArgsProduct({kSizes})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
