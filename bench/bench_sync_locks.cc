/**
 * @file
 * Experiment E5 — Section 4 synchronisation claims. Compares the
 * three lock disciplines under contention:
 *
 *   tts   software test-and-test-and-set (the single-bus technique
 *         the paper says "translates to multiple broadcast
 *         operations" here);
 *   tset  hardware remote test-and-set with backoff;
 *   sync  the distributed queue lock (SYNC transaction).
 *
 * Each worker acquires the lock, increments a shared counter
 * (load + store inside the critical section) and releases, `iters`
 * times. Reported: total bus operations per lock hand-off and the
 * elapsed time — the paper's claim is that SYNC "collapses bus
 * traffic to a very low level" and (usually) grants FIFO order.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/system.hh"
#include "proc/processor.hh"
#include "proc/program.hh"

using namespace mcube;
using namespace mcube::bench;
using namespace mcube::prog;

namespace
{

const std::vector<std::int64_t> kKinds = {0, 1, 2};
const std::vector<std::int64_t> kWorkers = {2, 4, 8, 16};
constexpr unsigned kIters = 8;

std::string
pointLabel(int kind_idx, unsigned workers)
{
    return "kind" + std::to_string(kind_idx) + "_w"
         + std::to_string(workers);
}

Metrics
runLockBench(int kind_idx, unsigned workers)
{
    OpCode kind = kind_idx == 0   ? OpCode::LockTTS
                  : kind_idx == 1 ? OpCode::LockTset
                                  : OpCode::LockSync;
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);

    const Addr lock = 100, counter = 101;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<ProgramRunner>> runners;
    for (unsigned i = 0; i < workers; ++i) {
        ProcessorParams pp;
        procs.push_back(std::make_unique<Processor>(
            "p" + std::to_string(i), sys.eventQueue(),
            sys.node((i * 5) % 16), pp));
        std::vector<Instr> prog = {
            setCnt(kIters),
            Instr{kind, lock, 0, 0},
            load(counter),
            addAcc(1),
            storeAcc(counter),
            unlock(lock, 1),
            decJnz(1),
            halt(),
        };
        runners.push_back(std::make_unique<ProgramRunner>(
            "r" + std::to_string(i), sys.eventQueue(), *procs.back(),
            std::move(prog), 100 + i));
    }

    for (auto &r : runners)
        r->start();
    sys.eventQueue().runUntil(4'000'000'000ull);
    sys.drain();

    const double busOps = static_cast<double>(sys.totalBusOps());
    const double handoffs = static_cast<double>(workers) * kIters;
    Tick elapsed = 0;
    for (auto &r : runners)
        elapsed = std::max(elapsed, r->finishTick());
    // Recover the final counter value from whichever cache owns it.
    std::uint64_t finalCount = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (sys.node(id).modeOf(counter) != Mode::Invalid)
            finalCount = std::max(
                finalCount, sys.node(id).dataOf(counter).token);
    }
    return {{"bus_ops_per_handoff", busOps / handoffs},
            {"ns_per_handoff",
             static_cast<double>(elapsed) / handoffs},
            {"total_bus_ops", busOps},
            {"count_ok",
             finalCount
                     == static_cast<std::uint64_t>(workers) * kIters
                 ? 1.0
                 : 0.0}};
}

const bool kDeclared = [] {
    for (std::int64_t kind : kKinds) {
        for (std::int64_t workers : kWorkers) {
            declarePoint(pointLabel(static_cast<int>(kind),
                                    static_cast<unsigned>(workers)),
                         [kind, workers] {
                             return runLockBench(
                                 static_cast<int>(kind),
                                 static_cast<unsigned>(workers));
                         });
        }
    }
    return true;
}();

void
BM_LockDiscipline(benchmark::State &state)
{
    int kind_idx = static_cast<int>(state.range(0));
    unsigned workers = static_cast<unsigned>(state.range(1));
    const std::string label = pointLabel(kind_idx, workers);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["bus_ops_per_handoff"] =
        m.at("bus_ops_per_handoff");
    state.counters["ns_per_handoff"] = m.at("ns_per_handoff");
    state.counters["total_bus_ops"] = m.at("total_bus_ops");
    state.counters["count_ok"] = m.at("count_ok");
    BenchJson::instance().record("sync_locks", label, m);
}

} // namespace

BENCHMARK(BM_LockDiscipline)
    ->ArgNames({"kind_tts0_tset1_sync2", "workers"})
    ->ArgsProduct({kKinds, kWorkers})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
