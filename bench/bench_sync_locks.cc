/**
 * @file
 * Experiment E5 — Section 4 synchronisation claims. Compares the
 * three lock disciplines under contention:
 *
 *   tts   software test-and-test-and-set (the single-bus technique
 *         the paper says "translates to multiple broadcast
 *         operations" here);
 *   tset  hardware remote test-and-set with backoff;
 *   sync  the distributed queue lock (SYNC transaction).
 *
 * Each worker acquires the lock, increments a shared counter
 * (load + store inside the critical section) and releases, `iters`
 * times. Reported: total bus operations per lock hand-off and the
 * elapsed time — the paper's claim is that SYNC "collapses bus
 * traffic to a very low level" and (usually) grants FIFO order.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/system.hh"
#include "proc/processor.hh"
#include "proc/program.hh"

using namespace mcube;
using namespace mcube::prog;

namespace
{

struct LockRun
{
    std::uint64_t busOps = 0;
    std::uint64_t handoffs = 0;
    Tick elapsed = 0;
    std::uint64_t finalCount = 0;
};

LockRun
runLockBench(OpCode kind, unsigned workers, unsigned iters)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);

    const Addr lock = 100, counter = 101;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<ProgramRunner>> runners;
    for (unsigned i = 0; i < workers; ++i) {
        ProcessorParams pp;
        procs.push_back(std::make_unique<Processor>(
            "p" + std::to_string(i), sys.eventQueue(),
            sys.node((i * 5) % 16), pp));
        std::vector<Instr> prog = {
            setCnt(iters),
            Instr{kind, lock, 0, 0},
            load(counter),
            addAcc(1),
            storeAcc(counter),
            unlock(lock, 1),
            decJnz(1),
            halt(),
        };
        runners.push_back(std::make_unique<ProgramRunner>(
            "r" + std::to_string(i), sys.eventQueue(), *procs.back(),
            std::move(prog), 100 + i));
    }

    for (auto &r : runners)
        r->start();
    sys.eventQueue().runUntil(4'000'000'000ull);
    sys.drain();

    LockRun out;
    out.busOps = sys.totalBusOps();
    out.handoffs = static_cast<std::uint64_t>(workers) * iters;
    for (auto &r : runners)
        out.elapsed = std::max(out.elapsed, r->finishTick());
    // Recover the final counter value from whichever cache owns it.
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (sys.node(id).modeOf(counter) != Mode::Invalid)
            out.finalCount =
                std::max(out.finalCount, sys.node(id).dataOf(counter)
                                             .token);
    }
    return out;
}

void
BM_LockDiscipline(benchmark::State &state)
{
    int kind_idx = static_cast<int>(state.range(0));
    unsigned workers = static_cast<unsigned>(state.range(1));
    OpCode kind = kind_idx == 0   ? OpCode::LockTTS
                  : kind_idx == 1 ? OpCode::LockTset
                                  : OpCode::LockSync;
    const unsigned iters = 8;

    LockRun r{};
    for (auto _ : state)
        r = runLockBench(kind, workers, iters);

    state.counters["bus_ops_per_handoff"] =
        static_cast<double>(r.busOps) / static_cast<double>(r.handoffs);
    state.counters["ns_per_handoff"] =
        static_cast<double>(r.elapsed) / static_cast<double>(r.handoffs);
    state.counters["total_bus_ops"] = static_cast<double>(r.busOps);
    state.counters["count_ok"] =
        r.finalCount == static_cast<std::uint64_t>(workers) * iters
            ? 1.0
            : 0.0;
}

} // namespace

BENCHMARK(BM_LockDiscipline)
    ->ArgNames({"kind_tts0_tset1_sync2", "workers"})
    ->ArgsProduct({{0, 1, 2}, {2, 4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
