/**
 * @file
 * Experiment E7 — Section 6 scalability properties of the general
 * n^k Multicube:
 *
 *   - total buses k * n^(k-1); bandwidth per processor k/n, growing
 *     with k "precisely the rate at which the normal path length
 *     grows";
 *   - invalidation broadcast cost ~ (N-1)/(n-1) bus operations;
 *   - the multi (k = 1) and hypercube (n = 2) special cases;
 *   - the MVA's view of how a fixed 1024-processor budget behaves as
 *     the request rate scales.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hh"
#include "mva/mva_multik.hh"
#include "topology/multicube.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

void
BM_TopologyScaling(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    unsigned k = static_cast<unsigned>(state.range(1));
    MulticubeTopology t(n, k);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.invalidationBusOps());
    state.counters["processors"] =
        static_cast<double>(t.numProcessors());
    state.counters["buses"] = static_cast<double>(t.numBuses());
    state.counters["bw_per_proc"] = t.bandwidthPerProcessor();
    state.counters["inval_ops"] =
        static_cast<double>(t.invalidationBusOps());
    state.counters["max_hops"] =
        static_cast<double>(t.maxRequestHops());
}

/** Ways of building ~1K processors: n=32,k=2 (the Wisconsin
 *  Multicube), n=10,k=3, n=6,k=4, n=2,k=10 (hypercube). */
void
BM_WaysToBuild1K(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    unsigned k = static_cast<unsigned>(state.range(1));
    MulticubeTopology t(n, k);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.numBuses());
    state.counters["processors"] =
        static_cast<double>(t.numProcessors());
    state.counters["buses"] = static_cast<double>(t.numBuses());
    state.counters["buses_per_proc"] =
        static_cast<double>(t.busesPerProcessor());
    state.counters["bw_per_proc"] = t.bandwidthPerProcessor();
    state.counters["inval_ops"] =
        static_cast<double>(t.invalidationBusOps());
}

/** General-k MVA at the design-point rate: how the ~4K-processor
 *  budget behaves across dimensional builds (Section 6 trade-off). */
void
BM_MultiK_Mva(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    unsigned k = static_cast<unsigned>(state.range(1));
    MultiKParams p;
    p.n = n;
    p.k = k;
    p.requestsPerMs = 25.0;
    MultiKResult r{};
    double raw = 0.0;
    for (auto _ : state) {
        MultiKMvaModel m(p);
        r = m.solve();
        raw = m.rawLatency();
    }
    state.counters["processors"] =
        std::pow(static_cast<double>(n), k);
    state.counters["efficiency"] = r.efficiency;
    state.counters["bus_util"] = r.busUtilization;
    state.counters["raw_latency_ns"] = raw;
    state.counters["inval_ops"] = MultiKMvaModel(p).invalidationOps();
}

/** Efficiency of the 2-D machine as n scales at the design-point
 *  request rate (MVA). */
void
BM_Efficiency_vs_N(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    MvaResult r{};
    for (auto _ : state)
        r = runMva(n, 25.0);
    state.counters["processors"] = static_cast<double>(n) * n;
    state.counters["efficiency"] = r.efficiency;
    BenchJson::instance().record(
        "scalability", "mva_n" + std::to_string(n),
        {{"processors", static_cast<double>(n) * n},
         {"efficiency", r.efficiency},
         {"row_util", r.rowUtilization},
         {"col_util", r.colUtilization},
         {"resp_ns", r.responseTimeNs}});
}

} // namespace

BENCHMARK(BM_TopologyScaling)
    ->ArgNames({"n", "k"})
    ->ArgsProduct({{2, 4, 8, 16, 32}, {1, 2, 3}})
    ->Iterations(1);

BENCHMARK(BM_WaysToBuild1K)
    ->ArgNames({"n", "k"})
    ->Args({32, 2})
    ->Args({10, 3})
    ->Args({6, 4})
    ->Args({4, 5})
    ->Args({2, 10})
    ->Iterations(1);

BENCHMARK(BM_MultiK_Mva)
    ->ArgNames({"n", "k"})
    ->Args({64, 2})
    ->Args({16, 3})
    ->Args({8, 4})
    ->Args({4, 6})
    ->Args({2, 12})
    ->Iterations(1);

BENCHMARK(BM_Efficiency_vs_N)
    ->ArgNames({"n"})
    ->DenseRange(8, 40, 8)
    ->Iterations(1);

// No simulation points here (everything is closed-form MVA/topology),
// but use the shared entry point so --jobs is accepted uniformly.
MCUBE_BENCH_MAIN();
