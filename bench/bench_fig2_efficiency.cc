/**
 * @file
 * Experiment E1 — Figure 2: "Efficiency versus Number of Processors
 * per Row". Efficiency vs bus request rate for n = 8, 16, 24, 32
 * processors per row (N = n^2), parameters from the figure caption:
 * 16-word blocks, 50 ns/word, 750 ns memory and snooping-cache
 * latency, P(unmodified) = 0.8, P(invalidation) = 0.2.
 *
 * The primary series comes from the MVA model (as in the paper); the
 * event simulator cross-checks the smaller machines with the same
 * synthetic mix. Counters report the paper's y-axis (efficiency).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

/** MVA series: one benchmark per (n, rate) grid point. */
void
BM_Fig2_Mva(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    double rate = static_cast<double>(state.range(1));
    MvaResult r{};
    for (auto _ : state)
        r = runMva(n, rate);
    state.counters["efficiency"] = r.efficiency;
    state.counters["row_util"] = r.rowUtilization;
    state.counters["col_util"] = r.colUtilization;
    state.counters["resp_ns"] = r.responseTimeNs;
    BenchJson::instance().record(
        "fig2_efficiency",
        "mva_n" + std::to_string(n) + "_r"
            + std::to_string(static_cast<int>(rate)),
        {{"efficiency", r.efficiency},
         {"row_util", r.rowUtilization},
         {"col_util", r.colUtilization},
         {"resp_ns", r.responseTimeNs}});
}

/** Simulation cross-check on machines small enough to simulate
 *  quickly (64 and 256 processors). */
void
BM_Fig2_Sim(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    double rate = static_cast<double>(state.range(1));
    MixParams mix;
    mix.requestsPerMs = rate;
    SimPoint pt{};
    for (auto _ : state)
        pt = runMixSim(n, mix, 2.0);
    state.counters["efficiency"] = pt.efficiency;
    state.counters["row_util"] = pt.rowUtil;
    state.counters["col_util"] = pt.colUtil;
    state.counters["txns"] = static_cast<double>(pt.transactions);
    BenchJson::instance().record(
        "fig2_efficiency",
        "sim_n" + std::to_string(n) + "_r"
            + std::to_string(static_cast<int>(rate)),
        pt);
}

} // namespace

BENCHMARK(BM_Fig2_Mva)
    ->ArgNames({"n", "req_per_ms"})
    ->ArgsProduct({{8, 16, 24, 32}, {1, 5, 10, 15, 20, 25, 30, 40, 50}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Fig2_Sim)
    ->ArgNames({"n", "req_per_ms"})
    ->ArgsProduct({{8, 16}, {5, 15, 25, 40}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
