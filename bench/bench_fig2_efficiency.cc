/**
 * @file
 * Experiment E1 — Figure 2: "Efficiency versus Number of Processors
 * per Row". Efficiency vs bus request rate for n = 8, 16, 24, 32
 * processors per row (N = n^2), parameters from the figure caption:
 * 16-word blocks, 50 ns/word, 750 ns memory and snooping-cache
 * latency, P(unmodified) = 0.8, P(invalidation) = 0.2.
 *
 * The primary series comes from the MVA model (as in the paper); the
 * event simulator cross-checks the smaller machines with the same
 * synthetic mix. Counters report the paper's y-axis (efficiency).
 * Simulation points are declared into the SweepCache and precomputed
 * across --jobs worker threads before the benchmarks run.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

// Single source of truth for the simulated grid: the declaration loop
// below and the BENCHMARK registration walk the same vectors.
const std::vector<std::int64_t> kSimN = {8, 16};
const std::vector<std::int64_t> kSimRates = {5, 15, 25, 40};

std::string
simLabel(unsigned n, int rate)
{
    return "sim_n" + std::to_string(n) + "_r" + std::to_string(rate);
}

const bool kDeclared = [] {
    for (std::int64_t n : kSimN) {
        for (std::int64_t rate : kSimRates) {
            MixParams mix;
            mix.requestsPerMs = static_cast<double>(rate);
            declareMixSim(simLabel(static_cast<unsigned>(n),
                                   static_cast<int>(rate)),
                          static_cast<unsigned>(n), mix, 2.0);
        }
    }
    return true;
}();

/** MVA series: one benchmark per (n, rate) grid point. */
void
BM_Fig2_Mva(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    double rate = static_cast<double>(state.range(1));
    MvaResult r{};
    for (auto _ : state)
        r = runMva(n, rate);
    state.counters["efficiency"] = r.efficiency;
    state.counters["row_util"] = r.rowUtilization;
    state.counters["col_util"] = r.colUtilization;
    state.counters["resp_ns"] = r.responseTimeNs;
    BenchJson::instance().record(
        "fig2_efficiency",
        "mva_n" + std::to_string(n) + "_r"
            + std::to_string(static_cast<int>(rate)),
        {{"efficiency", r.efficiency},
         {"row_util", r.rowUtilization},
         {"col_util", r.colUtilization},
         {"resp_ns", r.responseTimeNs}});
}

/** Simulation cross-check on machines small enough to simulate
 *  quickly (64 and 256 processors). */
void
BM_Fig2_Sim(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    int rate = static_cast<int>(state.range(1));
    const std::string label = simLabel(n, rate);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["row_util"] = m.at("row_util");
    state.counters["col_util"] = m.at("col_util");
    state.counters["txns"] = m.at("transactions");
    BenchJson::instance().record("fig2_efficiency", label, m);
}

} // namespace

BENCHMARK(BM_Fig2_Mva)
    ->ArgNames({"n", "req_per_ms"})
    ->ArgsProduct({{8, 16, 24, 32}, {1, 5, 10, 15, 20, 25, 30, 40, 50}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Fig2_Sim)
    ->ArgNames({"n", "req_per_ms"})
    ->ArgsProduct({kSimN, kSimRates})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
