/**
 * @file
 * Experiment E8 — the Section 1 motivation: single-bus multis "are
 * limited to some tens of processors", while the Multicube's total
 * bandwidth grows with the machine. Both machines run the same
 * synthetic mix at the same per-processor request rate; the series
 * shows the multi collapsing as processors are added while the grid
 * holds its efficiency (the crossover).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/dancehall.hh"
#include "baseline/multi_workload.hh"
#include "baseline/single_bus_multi.hh"
#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

constexpr double kRate = 25.0;

const std::vector<std::int64_t> kMultiProcs = {4, 9, 16, 25, 36, 64,
                                               100};
const std::vector<std::int64_t> kDancehallProcs = {64, 256, 1024};
const std::vector<std::int64_t> kDancehallRates = {25, 100, 300, 600};
const std::vector<std::int64_t> kMulticubeN = {2, 3, 4, 5, 6, 8, 10};

std::string
multiLabel(unsigned procs)
{
    return "multi_p" + std::to_string(procs);
}

std::string
dancehallLabel(unsigned procs, int ref_rate)
{
    return "dancehall_p" + std::to_string(procs) + "_r"
         + std::to_string(ref_rate);
}

std::string
multicubeLabel(unsigned n)
{
    return "multicube_n" + std::to_string(n);
}

Metrics
runSingleBusMulti(unsigned procs)
{
    MultiParams p;
    p.numProcessors = procs;
    SingleBusMulti sys(p);
    MixParams mix;
    mix.requestsPerMs = kRate;
    MultiMixWorkload wl(sys, mix);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    return {{"processors", static_cast<double>(procs)},
            {"efficiency", wl.efficiency()},
            {"bus_util", sys.bus().utilization()},
            {"bus_ops",
             static_cast<double>(sys.bus().opsDelivered())}};
}

Metrics
runDancehall(unsigned procs, double ref_rate)
{
    DancehallParams p;
    p.numProcessors = procs;
    p.numBanks = procs;
    DancehallSystem sys(p);
    Tick latency =
        2 * sys.networkLatency() + p.bankServiceTicks + p.wordTicks;
    DancehallWorkload wl(sys, ref_rate);
    wl.start();
    sys.eventQueue().runUntil(2'000'000);
    wl.stop();
    sys.eventQueue().run();
    return {{"processors", static_cast<double>(procs)},
            {"shared_refs_per_ms", ref_rate},
            {"efficiency", wl.efficiency()},
            {"bank_util", sys.bankUtilization()},
            {"unloaded_latency_ns", static_cast<double>(latency)}};
}

const bool kDeclared = [] {
    for (std::int64_t procs : kMultiProcs) {
        declarePoint(multiLabel(static_cast<unsigned>(procs)),
                     [procs] {
                         return runSingleBusMulti(
                             static_cast<unsigned>(procs));
                     });
    }
    for (std::int64_t procs : kDancehallProcs) {
        for (std::int64_t rate : kDancehallRates) {
            declarePoint(
                dancehallLabel(static_cast<unsigned>(procs),
                               static_cast<int>(rate)),
                [procs, rate] {
                    return runDancehall(static_cast<unsigned>(procs),
                                        static_cast<double>(rate));
                });
        }
    }
    for (std::int64_t n : kMulticubeN) {
        MixParams mix;
        mix.requestsPerMs = kRate;
        declareMixSim(multicubeLabel(static_cast<unsigned>(n)),
                      static_cast<unsigned>(n), mix, 2.0);
    }
    return true;
}();

void
BM_SingleBusMulti(benchmark::State &state)
{
    unsigned procs = static_cast<unsigned>(state.range(0));
    const std::string label = multiLabel(procs);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["processors"] = m.at("processors");
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["bus_util"] = m.at("bus_util");
    state.counters["bus_ops"] = m.at("bus_ops");
    BenchJson::instance().record("vs_single_bus", label, m);
}

/**
 * The other Section 1 foil: a multistage-network dance hall with no
 * caching of shared data — every shared *reference* pays the full
 * network round trip. The fair axis is therefore the shared-reference
 * rate: the Multicube turns most shared references into cache hits
 * (its 25 bus-requests/ms budget corresponds to reference rates in
 * the hundreds per ms — see examples/address_stream), while the dance
 * hall's network sees the raw reference rate and collapses as it
 * approaches the round-trip reciprocal.
 */
void
BM_Dancehall(benchmark::State &state)
{
    unsigned procs = static_cast<unsigned>(state.range(0));
    int ref_rate = static_cast<int>(state.range(1));
    const std::string label = dancehallLabel(procs, ref_rate);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["processors"] = m.at("processors");
    state.counters["shared_refs_per_ms"] = m.at("shared_refs_per_ms");
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["bank_util"] = m.at("bank_util");
    state.counters["unloaded_latency_ns"] =
        m.at("unloaded_latency_ns");
    BenchJson::instance().record("vs_single_bus", label, m);
}

void
BM_Multicube(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    const std::string label = multicubeLabel(n);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["processors"] = static_cast<double>(n) * n;
    state.counters["efficiency"] = m.at("efficiency");
    state.counters["row_util"] = m.at("row_util");
    BenchJson::instance().record("vs_single_bus", label, m);
}

} // namespace

BENCHMARK(BM_SingleBusMulti)
    ->ArgNames({"processors"})
    ->ArgsProduct({kMultiProcs})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Dancehall)
    ->ArgNames({"processors", "shared_refs_per_ms"})
    ->ArgsProduct({kDancehallProcs, kDancehallRates})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Multicube)
    ->ArgNames({"n"})
    ->ArgsProduct({kMulticubeN})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
