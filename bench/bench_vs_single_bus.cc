/**
 * @file
 * Experiment E8 — the Section 1 motivation: single-bus multis "are
 * limited to some tens of processors", while the Multicube's total
 * bandwidth grows with the machine. Both machines run the same
 * synthetic mix at the same per-processor request rate; the series
 * shows the multi collapsing as processors are added while the grid
 * holds its efficiency (the crossover).
 */

#include <benchmark/benchmark.h>

#include "baseline/dancehall.hh"
#include "baseline/multi_workload.hh"
#include "baseline/single_bus_multi.hh"
#include "bench_util.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

constexpr double kRate = 25.0;

void
BM_SingleBusMulti(benchmark::State &state)
{
    unsigned procs = static_cast<unsigned>(state.range(0));
    double eff = 0.0;
    std::uint64_t ops = 0;
    double util = 0.0;
    for (auto _ : state) {
        MultiParams p;
        p.numProcessors = procs;
        SingleBusMulti sys(p);
        MixParams mix;
        mix.requestsPerMs = kRate;
        MultiMixWorkload wl(sys, mix);
        wl.start();
        sys.run(2'000'000);
        wl.stop();
        sys.drain();
        eff = wl.efficiency();
        ops = sys.bus().opsDelivered();
        util = sys.bus().utilization();
    }
    state.counters["processors"] = static_cast<double>(procs);
    state.counters["efficiency"] = eff;
    state.counters["bus_util"] = util;
    state.counters["bus_ops"] = static_cast<double>(ops);
}

/**
 * The other Section 1 foil: a multistage-network dance hall with no
 * caching of shared data — every shared *reference* pays the full
 * network round trip. The fair axis is therefore the shared-reference
 * rate: the Multicube turns most shared references into cache hits
 * (its 25 bus-requests/ms budget corresponds to reference rates in
 * the hundreds per ms — see examples/address_stream), while the dance
 * hall's network sees the raw reference rate and collapses as it
 * approaches the round-trip reciprocal.
 */
void
BM_Dancehall(benchmark::State &state)
{
    unsigned procs = static_cast<unsigned>(state.range(0));
    double ref_rate = static_cast<double>(state.range(1));
    double eff = 0.0, util = 0.0;
    Tick latency = 0;
    for (auto _ : state) {
        DancehallParams p;
        p.numProcessors = procs;
        p.numBanks = procs;
        DancehallSystem sys(p);
        latency = 2 * sys.networkLatency() + p.bankServiceTicks
                + p.wordTicks;
        DancehallWorkload wl(sys, ref_rate);
        wl.start();
        sys.eventQueue().runUntil(2'000'000);
        wl.stop();
        sys.eventQueue().run();
        eff = wl.efficiency();
        util = sys.bankUtilization();
    }
    state.counters["processors"] = static_cast<double>(procs);
    state.counters["shared_refs_per_ms"] = ref_rate;
    state.counters["efficiency"] = eff;
    state.counters["bank_util"] = util;
    state.counters["unloaded_latency_ns"] =
        static_cast<double>(latency);
}

void
BM_Multicube(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    MixParams mix;
    mix.requestsPerMs = kRate;
    SimPoint pt{};
    for (auto _ : state)
        pt = runMixSim(n, mix, 2.0);
    state.counters["processors"] = static_cast<double>(n) * n;
    state.counters["efficiency"] = pt.efficiency;
    state.counters["row_util"] = pt.rowUtil;
}

} // namespace

BENCHMARK(BM_SingleBusMulti)
    ->ArgNames({"processors"})
    ->Arg(4)
    ->Arg(9)
    ->Arg(16)
    ->Arg(25)
    ->Arg(36)
    ->Arg(64)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Dancehall)
    ->ArgNames({"processors", "shared_refs_per_ms"})
    ->ArgsProduct({{64, 256, 1024}, {25, 100, 300, 600}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Multicube)
    ->ArgNames({"n"})
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
