/**
 * @file
 * Experiment E4 — the Section 3/6 bus-operation cost table. The paper
 * claims, per transaction:
 *
 *   READ, line unmodified        <= 4 bus operations
 *   READ, line modified           = 5 bus operations
 *   READ-MOD, line modified       = 4 bus operations
 *   READ-MOD, line unmodified     = (n+1) row + 3 column operations
 *
 * Each point performs one isolated transaction of the given kind on a
 * quiesced n x n machine and reports the ops actually delivered
 * across all buses, split by dimension.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/system.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kSizes = {4, 8, 16};
const std::vector<std::int64_t> kKinds = {0, 1, 2, 3, 4};

std::string
pointLabel(unsigned n, int kind)
{
    return "n" + std::to_string(n) + "_kind" + std::to_string(kind);
}

struct OpsCount
{
    std::uint64_t row = 0;
    std::uint64_t col = 0;
};

OpsCount
countOps(MulticubeSystem &sys)
{
    OpsCount c;
    for (unsigned i = 0; i < sys.n(); ++i) {
        c.row += sys.rowBus(i).opsDelivered();
        c.col += sys.colBus(i).opsDelivered();
    }
    return c;
}

/** kind: 0 = READ unmod, 1 = READ mod, 2 = READMOD mod,
 *        3 = READMOD unmod (broadcast), 4 = ALLOCATE unmod. */
Metrics
runTransaction(unsigned n, int kind)
{
    SystemParams p;
    p.n = n;
    MulticubeSystem sys(p);
    // Home column 0; both parties live off the home column and
    // off each other's row/column, so no shortcut paths apply.
    Addr addr = 0;
    SnoopController &owner = sys.node(1, 1);
    SnoopController &actor = sys.node(n - 1, n - 2);

    if (kind == 1 || kind == 2) {
        // Pre-dirty the line at a third party.
        owner.write(addr, 1, [](const TxnResult &) {});
        sys.drain();
    }
    OpsCount before = countOps(sys);
    std::uint64_t tok = 0;
    switch (kind) {
      case 0:
      case 1:
        actor.read(addr, tok, [](const TxnResult &) {});
        break;
      case 2:
      case 3:
        actor.write(addr, 2, [](const TxnResult &) {});
        break;
      case 4:
        actor.writeAllocate(addr, 2, [](const TxnResult &) {});
        break;
    }
    sys.drain();
    OpsCount after = countOps(sys);
    const double row_ops =
        static_cast<double>(after.row - before.row);
    const double col_ops =
        static_cast<double>(after.col - before.col);

    double paper = 0.0;
    switch (kind) {
      case 0: paper = 4; break;           // READ unmodified
      case 1: paper = 5; break;           // READ modified
      case 2: paper = 4; break;           // READ-MOD modified
      case 3:
      case 4: paper = n + 1 + 3; break;   // broadcast: (n+1) row + 3 col
    }
    return {{"row_ops", row_ops},
            {"col_ops", col_ops},
            {"total_ops", row_ops + col_ops},
            {"paper_total", paper}};
}

const bool kDeclared = [] {
    for (std::int64_t n : kSizes) {
        for (std::int64_t kind : kKinds) {
            declarePoint(pointLabel(static_cast<unsigned>(n),
                                    static_cast<int>(kind)),
                         [n, kind] {
                             return runTransaction(
                                 static_cast<unsigned>(n),
                                 static_cast<int>(kind));
                         });
        }
    }
    return true;
}();

void
BM_BusOpsPerTransaction(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    int kind = static_cast<int>(state.range(1));
    const std::string label = pointLabel(n, kind);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["row_ops"] = m.at("row_ops");
    state.counters["col_ops"] = m.at("col_ops");
    state.counters["total_ops"] = m.at("total_ops");
    state.counters["paper_total"] = m.at("paper_total");
    BenchJson::instance().record("busops_table", label, m);
}

} // namespace

BENCHMARK(BM_BusOpsPerTransaction)
    ->ArgNames({"n", "kind"})
    ->ArgsProduct({kSizes, kKinds})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

MCUBE_BENCH_MAIN();
