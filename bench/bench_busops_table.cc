/**
 * @file
 * Experiment E4 — the Section 3/6 bus-operation cost table. The paper
 * claims, per transaction:
 *
 *   READ, line unmodified        <= 4 bus operations
 *   READ, line modified           = 5 bus operations
 *   READ-MOD, line modified       = 4 bus operations
 *   READ-MOD, line unmodified     = (n+1) row + 3 column operations
 *
 * Each benchmark performs one isolated transaction of the given kind
 * on a quiesced n x n machine and reports the ops actually delivered
 * across all buses, split by dimension.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/system.hh"

using namespace mcube;

namespace
{

struct OpsCount
{
    std::uint64_t row = 0;
    std::uint64_t col = 0;
};

OpsCount
countOps(MulticubeSystem &sys)
{
    OpsCount c;
    for (unsigned i = 0; i < sys.n(); ++i) {
        c.row += sys.rowBus(i).opsDelivered();
        c.col += sys.colBus(i).opsDelivered();
    }
    return c;
}

/** kind: 0 = READ unmod, 1 = READ mod, 2 = READMOD mod,
 *        3 = READMOD unmod (broadcast), 4 = ALLOCATE unmod. */
void
BM_BusOpsPerTransaction(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    int kind = static_cast<int>(state.range(1));

    std::uint64_t row_ops = 0, col_ops = 0;
    for (auto _ : state) {
        SystemParams p;
        p.n = n;
        MulticubeSystem sys(p);
        // Home column 0; both parties live off the home column and
        // off each other's row/column, so no shortcut paths apply.
        Addr addr = 0;
        SnoopController &owner = sys.node(1, 1);
        SnoopController &actor = sys.node(n - 1, n - 2);

        if (kind == 1 || kind == 2) {
            // Pre-dirty the line at a third party.
            owner.write(addr, 1, [](const TxnResult &) {});
            sys.drain();
        }
        OpsCount before = countOps(sys);
        std::uint64_t tok = 0;
        switch (kind) {
          case 0:
          case 1:
            actor.read(addr, tok, [](const TxnResult &) {});
            break;
          case 2:
          case 3:
            actor.write(addr, 2, [](const TxnResult &) {});
            break;
          case 4:
            actor.writeAllocate(addr, 2, [](const TxnResult &) {});
            break;
        }
        sys.drain();
        OpsCount after = countOps(sys);
        row_ops = after.row - before.row;
        col_ops = after.col - before.col;
    }

    state.counters["row_ops"] = static_cast<double>(row_ops);
    state.counters["col_ops"] = static_cast<double>(col_ops);
    state.counters["total_ops"] = static_cast<double>(row_ops + col_ops);

    double paper = 0.0;
    switch (kind) {
      case 0: paper = 4; break;           // READ unmodified
      case 1: paper = 5; break;           // READ modified
      case 2: paper = 4; break;           // READ-MOD modified
      case 3:
      case 4: paper = n + 1 + 3; break;   // broadcast: (n+1) row + 3 col
    }
    state.counters["paper_total"] = paper;
}

} // namespace

BENCHMARK(BM_BusOpsPerTransaction)
    ->ArgNames({"n", "kind"})
    ->ArgsProduct({{4, 8, 16}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
