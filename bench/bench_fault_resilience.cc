/**
 * @file
 * Experiment E7 — cost of robustness. Sweeps bus-level fault
 * probability from 0 to 10% for each injectable fault kind on a 4x4
 * machine running the random protocol tester with the transaction
 * watchdog enabled, and reports how throughput and completion latency
 * degrade as the recovery machinery (memory bounces, watchdog
 * reissues, relaunch caps) absorbs the faults.
 *
 * The interesting readings:
 *
 *   ops_per_ms        issued-transaction throughput in simulated time;
 *   mean_miss_ns      mean end-to-end miss latency (recovery rounds
 *                     inflate the tail first, then the mean);
 *   watchdog_reissues total recovery firings across all nodes;
 *   injections        faults actually applied by the plan;
 *   completed         1.0 iff every transaction finished and the
 *                     coherence checker saw zero violations — the
 *                     resilience claim itself.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench_util.hh"
#include "core/checker.hh"
#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "proc/random_tester.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

struct FaultRun
{
    std::uint64_t ops = 0;
    std::uint64_t injections = 0;
    std::uint64_t reissues = 0;
    std::uint64_t bounces = 0;
    double meanMissNs = 0.0;
    Tick elapsed = 0;
    bool completed = false;
    /** Flattened stat tree of the faulted system. */
    std::map<std::string, double> stats;
};

/**
 * The resilience trajectory is read out of the stat tree
 * (watchdog recovery counters, memory bounces, injector totals). A
 * stat rename would not fail the build — it would just blank those
 * columns in BENCH_fault_resilience.json and the dashboard would show
 * a flat zero "recovery cost" forever. Abort loudly instead.
 */
void
requireRecoveryStats(const std::map<std::string, double> &stats)
{
    static const char *const required[] = {
        ".watchdog_reissues",
        ".watchdog_recovery_latency",
        ".watchdog_recovery_hist",
        ".bounces",
        "fault.ops_seen",
    };
    for (const char *needle : required) {
        bool found = false;
        for (const auto &kv : stats) {
            if (kv.first.find(needle) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "bench_fault_resilience: recovery stat '%s' "
                         "missing from the flattened stat tree; the "
                         "BENCH json would silently lose the "
                         "resilience trajectory\n",
                         needle);
            std::abort();
        }
    }
}

FaultPlan
planFor(int kind, double prob)
{
    switch (kind) {
      case 0:
        return FaultPlan::dropRequests(prob, 7);
      case 1:
        return FaultPlan::dropReplies(prob, 7);
      case 2:
        return FaultPlan::delays(prob, 2000, 7);
      default:
        return FaultPlan::duplicates(prob, 7);
    }
}

FaultRun
runCampaign(int kind, double prob)
{
    SystemParams p;
    p.n = 4;
    p.seed = 1701;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    p.ctrl.requestTimeoutTicks = 500'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 128);
    FaultInjector injector(sys, planFor(kind, prob));
    injector.regStats(sys.statistics());

    RandomTesterParams tp;
    tp.opsPerNode = 120;
    tp.pTset = 0.1;
    tp.seed = 23;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(10'000'000'000ull);
    sys.drain(1'000'000'000ull);

    FaultRun out;
    out.ops = tester.opsIssued();
    out.injections = injector.totalInjections();
    out.elapsed = sys.eventQueue().now();
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        out.reissues += sys.node(id).watchdogReissues();
        const Distribution &d = sys.node(id).missLatency();
        out.meanMissNs += d.mean() * static_cast<double>(d.count());
    }
    std::uint64_t misses = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        misses += sys.node(id).missLatency().count();
    if (misses > 0)
        out.meanMissNs /= static_cast<double>(misses);
    for (unsigned c = 0; c < sys.n(); ++c)
        out.bounces += sys.memory(c).bounces();
    out.completed = tester.finished() && checker.violations() == 0
                 && tester.readFailures() == 0;
    sys.statistics().flatten(out.stats);
    requireRecoveryStats(out.stats);
    return out;
}

void
BM_FaultResilience(benchmark::State &state)
{
    const int kind = static_cast<int>(state.range(0));
    const double prob = static_cast<double>(state.range(1)) / 100.0;

    FaultRun r{};
    for (auto _ : state)
        r = runCampaign(kind, prob);

    const double ms = static_cast<double>(r.elapsed) / 1e6;
    state.counters["ops_per_ms"] =
        ms > 0 ? static_cast<double>(r.ops) / ms : 0.0;
    state.counters["mean_miss_ns"] = r.meanMissNs;
    state.counters["watchdog_reissues"] = static_cast<double>(r.reissues);
    state.counters["mem_bounces"] = static_cast<double>(r.bounces);
    state.counters["injections"] = static_cast<double>(r.injections);
    state.counters["completed"] = r.completed ? 1.0 : 0.0;
    // Carry the whole flattened stat tree (watchdog recovery stats,
    // per-kind injection counters, memory bounces) into the BENCH
    // json alongside the headline metrics; requireRecoveryStats()
    // already proved the recovery keys exist in it.
    std::map<std::string, double> metrics = r.stats;
    metrics["ops_per_ms"] = state.counters["ops_per_ms"];
    metrics["mean_miss_ns"] = r.meanMissNs;
    metrics["watchdog_reissues"] = static_cast<double>(r.reissues);
    metrics["mem_bounces"] = static_cast<double>(r.bounces);
    metrics["injections"] = static_cast<double>(r.injections);
    metrics["completed"] = r.completed ? 1.0 : 0.0;
    // Echo the seeds so every published point is reproducible from
    // its artifact alone (cf. sweep_cli's config header).
    metrics["sys_seed"] = 1701;
    metrics["tester_seed"] = 23;
    metrics["plan_seed"] = 7;
    metrics["fault_kind"] = static_cast<double>(kind);
    metrics["fault_prob"] = prob;
    BenchJson::instance().record(
        "fault_resilience",
        "kind" + std::to_string(kind) + "_p"
            + std::to_string(static_cast<int>(prob * 100)),
        std::move(metrics));
}

} // namespace

BENCHMARK(BM_FaultResilience)
    ->ArgNames({"kind_dreq0_drep1_delay2_dup3", "fault_pct"})
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 5, 10}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
