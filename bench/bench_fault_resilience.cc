/**
 * @file
 * Experiment E7 — cost of robustness. Sweeps bus-level fault
 * probability from 0 to 10% for each injectable fault kind on a 4x4
 * machine running the random protocol tester with the transaction
 * watchdog enabled, and reports how throughput and completion latency
 * degrade as the recovery machinery (memory bounces, watchdog
 * reissues, relaunch caps) absorbs the faults.
 *
 * The interesting readings:
 *
 *   ops_per_ms        issued-transaction throughput in simulated time;
 *   mean_miss_ns      mean end-to-end miss latency (recovery rounds
 *                     inflate the tail first, then the mean);
 *   watchdog_reissues total recovery firings across all nodes;
 *   injections        faults actually applied by the plan;
 *   completed         1.0 iff every transaction finished and the
 *                     coherence checker saw zero violations — the
 *                     resilience claim itself.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/checker.hh"
#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "fault/reconfig.hh"
#include "proc/random_tester.hh"

using namespace mcube;
using namespace mcube::bench;

namespace
{

const std::vector<std::int64_t> kKinds = {0, 1, 2, 3};
const std::vector<std::int64_t> kFaultPcts = {0, 1, 2, 5, 10};

std::string
pointLabel(int kind, int pct)
{
    return "kind" + std::to_string(kind) + "_p" + std::to_string(pct);
}

/**
 * The resilience trajectory is read out of the stat tree
 * (watchdog recovery counters, memory bounces, injector totals). A
 * stat rename would not fail the build — it would just blank those
 * columns in BENCH_fault_resilience.json and the dashboard would show
 * a flat zero "recovery cost" forever. Abort loudly instead.
 */
void
requireRecoveryStats(const Metrics &stats)
{
    static const char *const required[] = {
        ".watchdog_reissues",
        ".watchdog_recovery_latency",
        ".watchdog_recovery_hist",
        ".bounces",
        "fault.ops_seen",
    };
    for (const char *needle : required) {
        bool found = false;
        for (const auto &kv : stats) {
            if (kv.first.find(needle) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "bench_fault_resilience: recovery stat '%s' "
                         "missing from the flattened stat tree; the "
                         "BENCH json would silently lose the "
                         "resilience trajectory\n",
                         needle);
            std::abort();
        }
    }
}

FaultPlan
planFor(int kind, double prob)
{
    switch (kind) {
      case 0:
        return FaultPlan::dropRequests(prob, 7);
      case 1:
        return FaultPlan::dropReplies(prob, 7);
      case 2:
        return FaultPlan::delays(prob, 2000, 7);
      default:
        return FaultPlan::duplicates(prob, 7);
    }
}

Metrics
runCampaign(int kind, int pct)
{
    const double prob = static_cast<double>(pct) / 100.0;
    SystemParams p;
    p.n = 4;
    p.seed = 1701;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    p.ctrl.requestTimeoutTicks = 500'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 128);
    FaultInjector injector(sys, planFor(kind, prob));
    injector.regStats(sys.statistics());

    RandomTesterParams tp;
    tp.opsPerNode = 120;
    tp.pTset = 0.1;
    tp.seed = 23;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(10'000'000'000ull);
    sys.drain(1'000'000'000ull);

    std::uint64_t reissues = 0, misses = 0;
    double meanMissNs = 0.0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        reissues += sys.node(id).watchdogReissues();
        const Distribution &d = sys.node(id).missLatency();
        meanMissNs += d.mean() * static_cast<double>(d.count());
        misses += d.count();
    }
    if (misses > 0)
        meanMissNs /= static_cast<double>(misses);
    std::uint64_t bounces = 0;
    for (unsigned c = 0; c < sys.n(); ++c)
        bounces += sys.memory(c).bounces();
    const bool completed = tester.finished()
                        && checker.violations() == 0
                        && tester.readFailures() == 0;

    // Carry the whole flattened stat tree (watchdog recovery stats,
    // per-kind injection counters, memory bounces) into the BENCH
    // json alongside the headline metrics.
    std::map<std::string, double> stats;
    sys.statistics().flatten(stats);
    Metrics metrics(stats.begin(), stats.end());
    requireRecoveryStats(metrics);
    const double ms = static_cast<double>(sys.eventQueue().now()) / 1e6;
    metrics["ops_per_ms"] =
        ms > 0 ? static_cast<double>(tester.opsIssued()) / ms : 0.0;
    metrics["mean_miss_ns"] = meanMissNs;
    metrics["watchdog_reissues"] = static_cast<double>(reissues);
    metrics["mem_bounces"] = static_cast<double>(bounces);
    metrics["injections"] =
        static_cast<double>(injector.totalInjections());
    metrics["completed"] = completed ? 1.0 : 0.0;
    // Echo the seeds so every published point is reproducible from
    // its artifact alone (cf. sweep_cli's config header).
    metrics["sys_seed"] = 1701;
    metrics["tester_seed"] = 23;
    metrics["plan_seed"] = 7;
    metrics["fault_kind"] = static_cast<double>(kind);
    metrics["fault_prob"] = prob;
    return metrics;
}

// ---------------------------------------------------------------------
// Experiment E8 — graceful degradation under fail-stop faults.
// A 4x4 machine loses a row bus, a node, a memory module — or all
// three, staggered — mid-campaign, and the degradation machinery
// (watchdog detection, quarantine, epoch-based reconfiguration)
// carries the surviving nodes to completion. The headline readings:
//
//   availability            1 - aborted/issued transactions: the
//                           fraction of offered work the degraded
//                           machine still completed;
//   time_to_detect_*        kill -> detection latency per kill (ticks);
//   time_to_reconfigure_*   kill -> epoch-cutover latency per kill;
//   data_loss_lines         Modified lines lost by abrupt kills
//                           (graceful retirement scrubs: exactly 0).
//
// Every scenario is fixed-seed and single-threaded deterministic:
// reruns produce bit-identical BENCH json values.
// ---------------------------------------------------------------------

struct FailStopScenario
{
    const char *label;
    bool graceful;
    bool bus, node, mem;
};

const std::vector<FailStopScenario> kFailStops = {
    {"failstop_bus_graceful", true, true, false, false},
    {"failstop_bus_abrupt", false, true, false, false},
    {"failstop_node_graceful", true, false, true, false},
    {"failstop_node_abrupt", false, false, true, false},
    {"failstop_mem_graceful", true, false, false, true},
    {"failstop_mem_abrupt", false, false, false, true},
    {"failstop_triple_graceful", true, true, true, true},
    {"failstop_triple_abrupt", false, true, true, true},
};

FaultPlan
failStopPlanFor(const FailStopScenario &sc)
{
    // Staggered mid-run kills: row bus 2 first, then node 13 (not on
    // the dead row), then memory column 0 — the acceptance campaign.
    FaultPlan plan;
    plan.seed = 7;
    if (sc.bus)
        plan.specs.push_back(
            FaultPlan::failStopBus(0, 2, 400'000, sc.graceful)
                .specs[0]);
    if (sc.node)
        plan.specs.push_back(
            FaultPlan::failStopNode(13, 900'000, sc.graceful)
                .specs[0]);
    if (sc.mem)
        plan.specs.push_back(
            FaultPlan::failStopMemory(0, 1'400'000, sc.graceful)
                .specs[0]);
    return plan;
}

Metrics
runFailStopCampaign(const FailStopScenario &sc)
{
    SystemParams p;
    p.n = 4;
    p.seed = 1701;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    p.ctrl.requestTimeoutTicks = 300'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 128);
    FaultInjector injector(sys, failStopPlanFor(sc));
    injector.regStats(sys.statistics());

    // Bench-scale detection thresholds (cf. tests/reconfig_test.cc):
    // low enough that detection and cutover land well inside the run.
    ReconfigParams rp;
    rp.escalationThreshold = 2;
    rp.detectThreshold = 2;
    rp.drainTicks = 50'000;
    rp.detectTimeoutTicks = 1'500'000;
    ReconfigurationManager mgr(sys, failStopPlanFor(sc), &checker, rp);
    mgr.regStats(sys.statistics());

    RandomTesterParams tp;
    tp.opsPerNode = 250;
    tp.pTset = 0.1;
    tp.seed = 23;
    RandomTester tester(sys, checker, tp);
    tester.setAddrFilter([&mgr](NodeId n, Addr a) {
        return !mgr.requestRoutable(n, a);
    });
    tester.start();

    sys.eventQueue().runUntil(10'000'000'000ull);
    sys.drain(1'000'000'000ull);

    const bool completed = tester.finished()
                        && checker.violations() == 0
                        && tester.readFailures() == 0;

    std::map<std::string, double> stats;
    sys.statistics().flatten(stats);
    Metrics metrics(stats.begin(), stats.end());
    const std::uint64_t issued = tester.opsIssued();
    const std::uint64_t aborted = tester.opsAborted();
    metrics["availability"] =
        issued > 0
            ? 1.0 - static_cast<double>(aborted)
                        / static_cast<double>(issued)
            : 0.0;
    metrics["ops_issued"] = static_cast<double>(issued);
    metrics["ops_aborted"] = static_cast<double>(aborted);
    metrics["kills"] = static_cast<double>(mgr.kills());
    metrics["detections"] = static_cast<double>(mgr.detections());
    metrics["epochs"] = static_cast<double>(mgr.epoch());
    metrics["data_loss_lines"] =
        static_cast<double>(mgr.dataLossLines());
    metrics["phantom_repairs"] =
        static_cast<double>(mgr.phantomRepairs());
    // Per-kill latency histograms, plus mean/max for dashboards.
    auto emitLatencies = [&metrics](const char *prefix,
                                    const std::vector<Tick> &lat) {
        double sum = 0.0, mx = 0.0;
        for (std::size_t i = 0; i < lat.size(); ++i) {
            double v = static_cast<double>(lat[i]);
            metrics[std::string(prefix) + "_" + std::to_string(i)] = v;
            sum += v;
            if (v > mx)
                mx = v;
        }
        metrics[std::string(prefix) + "_count"] =
            static_cast<double>(lat.size());
        metrics[std::string(prefix) + "_mean"] =
            lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
        metrics[std::string(prefix) + "_max"] = mx;
    };
    emitLatencies("time_to_detect", mgr.detectLatencies());
    emitLatencies("time_to_reconfigure", mgr.reconfigureLatencies());
    const double ms = static_cast<double>(sys.eventQueue().now()) / 1e6;
    metrics["ops_per_ms"] =
        ms > 0 ? static_cast<double>(issued) / ms : 0.0;
    metrics["completed"] = completed ? 1.0 : 0.0;
    metrics["violations"] =
        static_cast<double>(checker.violations());
    metrics["sys_seed"] = 1701;
    metrics["tester_seed"] = 23;
    metrics["graceful"] = sc.graceful ? 1.0 : 0.0;
    return metrics;
}

const bool kFailStopsDeclared = [] {
    for (const FailStopScenario &sc : kFailStops)
        declarePoint(sc.label, [&sc] { return runFailStopCampaign(sc); });
    return true;
}();

void
BM_FailStopDegradation(benchmark::State &state)
{
    const FailStopScenario &sc =
        kFailStops[static_cast<std::size_t>(state.range(0))];
    const Metrics &m = sweepPoint(sc.label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.SetLabel(sc.label);
    state.counters["availability"] = m.at("availability");
    state.counters["time_to_detect_mean"] =
        m.at("time_to_detect_mean");
    state.counters["time_to_reconfigure_mean"] =
        m.at("time_to_reconfigure_mean");
    state.counters["data_loss_lines"] = m.at("data_loss_lines");
    state.counters["completed"] = m.at("completed");
    BenchJson::instance().record("fault_resilience", sc.label, m);
}

const bool kDeclared = [] {
    for (std::int64_t kind : kKinds) {
        for (std::int64_t pct : kFaultPcts) {
            declarePoint(pointLabel(static_cast<int>(kind),
                                    static_cast<int>(pct)),
                         [kind, pct] {
                             return runCampaign(
                                 static_cast<int>(kind),
                                 static_cast<int>(pct));
                         });
        }
    }
    return true;
}();

void
BM_FaultResilience(benchmark::State &state)
{
    const int kind = static_cast<int>(state.range(0));
    const int pct = static_cast<int>(state.range(1));
    const std::string label = pointLabel(kind, pct);
    const Metrics &m = sweepPoint(label);
    for (auto _ : state)
        state.SetIterationTime(m.at("wall_seconds"));
    state.counters["ops_per_ms"] = m.at("ops_per_ms");
    state.counters["mean_miss_ns"] = m.at("mean_miss_ns");
    state.counters["watchdog_reissues"] = m.at("watchdog_reissues");
    state.counters["mem_bounces"] = m.at("mem_bounces");
    state.counters["injections"] = m.at("injections");
    state.counters["completed"] = m.at("completed");
    BenchJson::instance().record("fault_resilience", label, m);
}

} // namespace

BENCHMARK(BM_FaultResilience)
    ->ArgNames({"kind_dreq0_drep1_delay2_dup3", "fault_pct"})
    ->ArgsProduct({kKinds, kFaultPcts})
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FailStopDegradation)
    ->ArgName("scenario")
    ->DenseRange(0, static_cast<int>(kFailStops.size()) - 1)
    ->Iterations(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MCUBE_BENCH_MAIN();
