/**
 * @file
 * A work-queue application — one of the scenarios Section 4 names as
 * motivation for the SYNC primitive. A producer enqueues work items
 * into a ring buffer of cache lines; consumer nodes take items under
 * a queue lock, "process" them (compute delay), and accumulate into
 * per-consumer results. Shows the programmer's view the paper
 * promises: ordinary shared-memory code with no placement decisions.
 *
 *   $ ./work_queue [consumers] [items]
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/processor.hh"

using namespace mcube;

namespace
{

// Shared-memory layout (line granular).
constexpr Addr lockAddr = 900;   // queue lock
constexpr Addr headAddr = 901;   // next index to consume
constexpr Addr ringBase = 1000;  // ring of work items

/** A consumer node driven by callbacks (its "thread"). */
class Consumer
{
  public:
    Consumer(MulticubeSystem &sys, NodeId node, unsigned total_items,
             std::uint64_t id)
        : sys(sys), totalItems(total_items), myId(id),
          proc("consumer" + std::to_string(id), sys.eventQueue(),
               sys.node(node), ProcessorParams{})
    {
    }

    void start() { acquire(); }

    bool done() const { return finished; }
    std::uint64_t consumed() const { return itemsTaken; }
    std::uint64_t sum() const { return acc; }

  private:
    void
    acquire()
    {
        proc.syncAcquire(lockAddr, [this](bool ok) {
            if (ok)
                readHead();
            else
                acquire();
        });
    }

    void
    readHead()
    {
        proc.load(headAddr, [this](std::uint64_t head) {
            if (head >= totalItems) {
                // Queue drained: release and stop.
                proc.release(lockAddr, 1, [this] { finished = true; });
                return;
            }
            myItem = head;
            proc.store(headAddr, head + 1, [this] { bumpDone(); });
        });
    }

    void
    bumpDone()
    {
        proc.release(lockAddr, 1, [this] { fetchItem(); });
    }

    void
    fetchItem()
    {
        proc.load(ringBase + myItem, [this](std::uint64_t value) {
            ++itemsTaken;
            acc += value;
            // "Process" the item, then go back for more.
            sys.eventQueue().scheduleIn(
                2000 + 200 * (myId % 4), [this] { acquire(); });
        });
    }

    MulticubeSystem &sys;
    unsigned totalItems;
    std::uint64_t myId;
    Processor proc;
    std::uint64_t myItem = 0;
    std::uint64_t itemsTaken = 0;
    std::uint64_t acc = 0;
    bool finished = false;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned consumers = argc > 1 ? std::atoi(argv[1]) : 6;
    unsigned items = argc > 2 ? std::atoi(argv[2]) : 48;

    SystemParams params;
    params.n = 4;
    MulticubeSystem sys(params);
    CoherenceChecker checker(sys);

    // Producer (node 0) fills the ring with the ALLOCATE hint — the
    // paper recommends it exactly for this whole-line-write pattern.
    SnoopController &producer = sys.node(0);
    for (unsigned i = 0; i < items; ++i) {
        producer.writeAllocate(ringBase + i, i + 1,
                               [](const TxnResult &) {});
        sys.drain();
    }
    producer.writeAllocate(headAddr, 0, [](const TxnResult &) {});
    sys.drain();

    std::vector<std::unique_ptr<Consumer>> pool;
    for (unsigned c = 0; c < consumers; ++c) {
        pool.push_back(std::make_unique<Consumer>(
            sys, (3 * c + 5) % sys.numNodes(), items, c));
        pool.back()->start();
    }

    auto all_done_now = [&] {
        for (auto &c : pool)
            if (!c->done())
                return false;
        return true;
    };
    while (!all_done_now()
           && sys.eventQueue().now() < 4'000'000'000ull)
        sys.run(10'000);
    Tick t_done = sys.eventQueue().now();
    sys.drain();

    std::uint64_t taken = 0, sum = 0;
    bool all_done = true;
    for (auto &c : pool) {
        taken += c->consumed();
        sum += c->sum();
        all_done = all_done && c->done();
    }
    std::uint64_t expect_sum =
        static_cast<std::uint64_t>(items) * (items + 1) / 2;

    std::cout << consumers << " consumers drained " << taken << "/"
              << items << " items in "
              << t_done / 1000.0 << " us\n"
              << "checksum " << sum << " (expected " << expect_sum
              << ") " << (sum == expect_sum ? "ok" : "MISMATCH")
              << "\n"
              << "all consumers finished: " << std::boolalpha
              << all_done << "\n"
              << "bus operations: " << sys.totalBusOps()
              << ", coherence violations: " << checker.violations()
              << "\n";
    return sum == expect_sum && all_done && checker.violations() == 0
               ? 0
               : 1;
}
