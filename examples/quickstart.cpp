/**
 * @file
 * Quickstart: build a 4 x 4 Wisconsin Multicube, move a cache line
 * around the grid with reads and writes, watch the protocol state,
 * and dump the statistics tree.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

int
main()
{
    // A 4x4 grid: 16 processors, 4 row buses, 4 column buses, one
    // memory module per column (lines interleaved by address).
    SystemParams params;
    params.n = 4;
    params.bus.blockWords = 16;       // 16-word coherency blocks
    params.ctrl.cache = {1024, 8};    // snooping cache: 8K lines
    params.ctrl.mlt = {256, 4};       // modified line table: 1K entries

    MulticubeSystem sys(params);
    CoherenceChecker checker(sys);    // verifies invariants as we go

    const Addr line = 42;  // home column = 42 % 4 = 2
    std::cout << "line " << line << " homes on column "
              << sys.gridMap().homeColumn(line) << "\n\n";

    // 1. Node (0,1) writes the line: a READ-MOD transaction fetches
    //    it from memory, invalidates any copies, and leaves the line
    //    modified in the writer's cache.
    SnoopController &writer = sys.node(0, 1);
    writer.write(line, 1001, [&](const TxnResult &r) {
        std::cout << "write done after " << r.latency << " ns\n";
    });
    sys.drain();
    std::cout << "writer mode: " << modeName(writer.modeOf(line))
              << ", memory valid: " << std::boolalpha
              << sys.memory(2).lineValid(line) << "\n";
    std::cout << "MLT entry in writer's column: "
              << sys.node(3, 1).table().contains(line) << "\n\n";

    // 2. Node (2,3) reads it: the request is routed via the modified
    //    line table to the owner, the data crosses two buses, and
    //    memory is updated along the way.
    SnoopController &reader = sys.node(2, 3);
    std::uint64_t token = 0;
    reader.read(line, token, [&](const TxnResult &r) {
        std::cout << "read got token " << r.data.token << " after "
                  << r.latency << " ns\n";
    });
    sys.drain();
    std::cout << "writer mode now: " << modeName(writer.modeOf(line))
              << ", reader mode: " << modeName(reader.modeOf(line))
              << ", memory token: "
              << sys.memory(2).lineData(line).token << "\n\n";

    // 3. Node (3,0) takes the line over with another write: the
    //    invalidation broadcast purges both shared copies.
    SnoopController &writer2 = sys.node(3, 0);
    writer2.write(line, 2002, [](const TxnResult &) {});
    sys.drain();
    std::cout << "after second write -- writer1: "
              << modeName(writer.modeOf(line))
              << ", reader: " << modeName(reader.modeOf(line))
              << ", writer2: " << modeName(writer2.modeOf(line))
              << "\n\n";

    // 4. The checker watched every bus operation.
    std::cout << "bus operations: " << sys.totalBusOps()
              << ", invariant violations: " << checker.violations()
              << "\n\n";

    std::cout << "--- statistics ---\n";
    sys.statistics().dump(std::cout);
    return 0;
}
