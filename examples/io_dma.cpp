/**
 * @file
 * Section 2's I/O story, end to end: a "network card" DMAs a buffer
 * into its host node's snooping cache using the ALLOCATE hint, a
 * consumer on the far corner of the grid reads it cache-to-cache, and
 * a "disk" on a third node streams the result back out — while a
 * coherence checker watches. Note that the payload reaches the
 * consumer without ever being written to main memory first ("I/O
 * data may never actually be written to memory, but be read directly
 * across the bus into the cache of the processor requesting it").
 *
 *   $ ./io_dma [lines]
 */

#include <cstdlib>
#include <iostream>

#include "core/checker.hh"
#include "core/system.hh"
#include "io/dma_engine.hh"

using namespace mcube;

int
main(int argc, char **argv)
{
    unsigned lines = argc > 1 ? std::atoi(argv[1]) : 32;

    SystemParams params;
    params.n = 4;
    MulticubeSystem sys(params);
    CoherenceChecker checker(sys);

    DmaParams nic_speed;
    nic_speed.ticksPerLine = 640;   // a fast network port
    DmaParams disk_speed;
    disk_speed.ticksPerLine = 2560; // a slower disk

    DmaEngine nic("nic0", sys.eventQueue(), sys.node(0, 0), nic_speed);
    DmaEngine disk("disk0", sys.eventQueue(), sys.node(3, 1),
                   disk_speed);

    const Addr buffer = 4096;

    // 1. Packet arrives: the NIC allocates the buffer lines directly
    //    in node (0,0)'s snooping cache.
    Tick t0 = sys.eventQueue().now();
    bool in_done = false;
    Tick in_finished_at = 0;
    nic.input(buffer, lines, 0xA000, [&] {
        in_done = true;
        in_finished_at = sys.eventQueue().now();
    });
    sys.eventQueue().runUntil(1'000'000'000ull);
    std::cout << "NIC input: " << nic.linesIn() << " lines in "
              << (in_finished_at - t0) / 1000.0 << " us\n";

    bool memory_untouched = true;
    for (Addr a = buffer; a < buffer + lines; ++a) {
        unsigned home = sys.gridMap().homeColumn(a);
        if (sys.memory(home).lineValid(a))
            memory_untouched = false;
    }
    std::cout << "payload bypassed main memory: " << std::boolalpha
              << memory_untouched << "\n\n";

    // 2. A consumer at (2,3) checksums the buffer straight out of the
    //    NIC host's cache.
    SnoopController &consumer = sys.node(2, 3);
    std::uint64_t checksum = 0;
    unsigned consumed = 0;
    for (Addr a = buffer; a < buffer + lines; ++a) {
        std::uint64_t tok = 0;
        consumer.read(a, tok, [&](const TxnResult &r) {
            checksum += r.data.token;
            ++consumed;
        });
        sys.drain();
    }
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < lines; ++i)
        expect += 0xA000 + i;
    std::cout << "consumer read " << consumed << " lines, checksum "
              << (checksum == expect ? "ok" : "BAD") << "\n\n";

    // 3. The disk streams the buffer back out (READ transactions find
    //    the current copies wherever they live).
    t0 = sys.eventQueue().now();
    std::uint64_t out_sum = 0;
    bool out_done = false;
    Tick out_finished_at = 0;
    disk.output(buffer, lines,
                [&](Addr, std::uint64_t tok) { out_sum += tok; },
                [&] {
                    out_done = true;
                    out_finished_at = sys.eventQueue().now();
                });
    sys.eventQueue().runUntil(sys.eventQueue().now()
                              + 1'000'000'000ull);
    sys.drain();
    std::cout << "disk output: " << disk.linesOut() << " lines in "
              << (out_finished_at - t0) / 1000.0
              << " us, checksum "
              << (out_sum == expect ? "ok" : "BAD") << "\n\n";

    std::cout << "bus operations: " << sys.totalBusOps()
              << ", coherence violations: " << checker.violations()
              << "\n";
    return in_done && out_done && checksum == expect
                   && out_sum == expect && checker.violations() == 0
               ? 0
               : 1;
}
