/**
 * @file
 * A small command-line driver for parameter sweeps, emitting CSV —
 * the tool a study of the machine would actually script against.
 *
 *   $ ./sweep_cli --mode=mva --n=32 --rates=1,5,10,20,25,30,40,50
 *   $ ./sweep_cli --mode=sim --n=8 --rates=5,15,25 --ms=2 --block=16
 *   $ ./sweep_cli --mode=both --n=8 --rates=10,25 --jobs=4
 *
 * Columns: mode,n,req_per_ms,block_words,efficiency,row_util,
 * col_util,resp_ns
 *
 * Parallelism:
 *   --jobs=N               run simulation points on N worker threads
 *                          (0 = all hardware threads; default 1).
 *                          Each point's seed is derived from the base
 *                          seed and the point's index, and rows are
 *                          emitted in rate order, so the CSV is
 *                          byte-identical for any job count.
 *   --sim-threads=N        run each *single* simulation on the
 *                          window-phased parallel engine with N
 *                          workers (0 = classic sequential engine;
 *                          default). Results are bit-identical for
 *                          any N >= 1 (see docs/PERFORMANCE.md,
 *                          "Parallel single-simulation engine"), but
 *                          the engine is a distinct canonical
 *                          schedule from N=0. Owns the worker pool,
 *                          so it forces --jobs=1. Profiling and
 *                          tracing compose with it (lane-sharded,
 *                          merged canonically; output is
 *                          bit-identical for any N); metrics sampling
 *                          and fault injection still force it back to
 *                          0, each with one stderr line naming the
 *                          flag (sim/sim_threads_policy.hh).
 *   --par-stats-out=f.json per-shard engine telemetry (lane/worker
 *                          event attribution, phase timing, realized
 *                          vs projected speedup); needs
 *                          --sim-threads>=1. Covers the last
 *                          simulated point, like the trace files.
 *
 * Observability (sim mode):
 *   --trace-out=t.json     Chrome trace-event JSON (Perfetto-viewable;
 *                          also readable by tools/trace_report)
 *   --trace-text=t.txt     flat text trace, one event per line
 *   --trace-cap=N          trace ring capacity (default 65536 events)
 *   --metrics-out=m.jsonl  interval metrics snapshots, one JSON/line
 *   --metrics-period=T     snapshot period in ticks (default 50000)
 *   --fault-drop=P         drop requests with probability P (enables
 *                          the transaction watchdog), so recovery
 *                          chains appear in the trace
 *   --fault-plan=f.json    run every point under a full FaultPlan
 *                          loaded from JSON (the same shape the fuzz
 *                          campaign's repro artifacts and
 *                          FaultPlan::toJson emit). Fail-stop specs
 *                          get the complete degradation machinery:
 *                          watchdog detection, quarantine and
 *                          epoch-based reconfiguration. A malformed
 *                          plan exits 4 with the parse reason
 *                          (distinct from "cannot open", exit 2).
 *   --profile-out=p.json   self-profile of the *simulator* (host time
 *                          by component/domain + coupling analysis;
 *                          readable by tools/prof_report)
 *   --profile-folded=p.txt folded stacks of the same profile, for
 *                          flamegraph.pl
 *   --progress             heartbeat on stderr while points run
 *                          (points done/total, events/s, ETA).
 *                          Off by default; forced off when stderr is
 *                          not a TTY so piped runs stay clean.
 *   --seed=S               system base seed (sim mode); the effective
 *                          seed and full configuration are echoed in
 *                          the '#' header line, so a saved CSV is
 *                          always re-runnable
 *
 * Tracing, metrics snapshots and self-profiling are process-global,
 * single-run tools: requesting them forces --jobs=1 (with a warning).
 * With several --rates, the files cover the *last* simulated point
 * (each point truncates them); use a single rate when tracing or
 * profiling.
 *
 * Robustness (docs/ROBUSTNESS.md):
 *   --journal=FILE         append each completed simulation point to
 *                          an fsync'd JSONL journal (keyed by the
 *                          effective configuration + git revision)
 *   --resume               skip points the journal already records,
 *                          emitting their journaled rows verbatim —
 *                          the union of an interrupted + resumed
 *                          sweep is byte-identical to an
 *                          uninterrupted one
 *   --isolate              fork each point into a resource-limited
 *                          worker process (crash/OOM/timeout is
 *                          triaged per point, not per sweep)
 *   --deadline-s=T         per-point wall-clock deadline when
 *                          isolating (default 300; 0 = off)
 *   --heartbeat-s=T        max heartbeat silence before a point is
 *                          triaged Stalled (default 0 = off)
 *   --rss-mb=M             per-point address-space cap when isolating
 *                          (default 0 = off)
 *
 * SIGINT/SIGTERM drain gracefully: no new point starts, in-flight
 * points finish, the partial CSV and journal stay valid (exit
 * 128+signal); a second signal kills immediately.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "fault/progress_monitor.hh"
#include "fault/reconfig.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"
#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "run/shutdown.hh"
#include "run/supervisor.hh"
#include "run/work_journal.hh"
#include "sim/parallel_engine.hh"
#include "sim/profiler.hh"
#include "sim/sim_threads_policy.hh"
#include "sim/sweep_runner.hh"
#include "trace/metrics_sampler.hh"
#include "trace/trace_event.hh"

using namespace mcube;

namespace
{

struct Options
{
    std::string mode = "both";
    unsigned n = 8;
    std::vector<double> rates = {5, 10, 15, 20, 25, 30, 40, 50};
    unsigned block = 16;
    double simMs = 2.0;
    double invFrac = 0.20;
    unsigned jobs = 1;
    unsigned simThreads = 0;
    std::string parStatsOut;
    std::string traceOut;
    std::string traceText;
    std::size_t traceCap = 1 << 16;
    std::string metricsOut;
    Tick metricsPeriod = 50'000;
    double faultDrop = 0.0;
    std::string faultPlanPath;
    FaultPlan faultPlan;
    bool haveFaultPlan = false;
    std::string profileOut;
    std::string profileFolded;
    bool progress = false;
    std::uint64_t seed = SystemParams{}.seed;
    std::string journal;
    bool resume = false;
    bool isolate = false;
    double deadlineS = 300.0;
    double heartbeatS = 0.0;
    std::uint64_t rssMb = 0;
};

std::vector<double>
parseList(const std::string &s)
{
    std::vector<double> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(std::atof(tok.c_str()));
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            std::cerr << "bad argument: " << a << "\n";
            return false;
        }
        auto eq = a.find('=');
        // `--resume` and `--resume=1` are equivalent: a bare flag
        // means "on".
        std::string key = eq == std::string::npos
                              ? a.substr(2)
                              : a.substr(2, eq - 2);
        std::string val =
            eq == std::string::npos ? "1" : a.substr(eq + 1);
        if (key == "mode")
            opt.mode = val;
        else if (key == "n")
            opt.n = std::atoi(val.c_str());
        else if (key == "rates")
            opt.rates = parseList(val);
        else if (key == "block")
            opt.block = std::atoi(val.c_str());
        else if (key == "ms")
            opt.simMs = std::atof(val.c_str());
        else if (key == "inv")
            opt.invFrac = std::atof(val.c_str());
        else if (key == "jobs")
            opt.jobs = std::atoi(val.c_str());
        else if (key == "sim-threads")
            opt.simThreads = std::atoi(val.c_str());
        else if (key == "par-stats-out")
            opt.parStatsOut = val;
        else if (key == "trace-out")
            opt.traceOut = val;
        else if (key == "trace-text")
            opt.traceText = val;
        else if (key == "trace-cap")
            opt.traceCap = std::atoll(val.c_str());
        else if (key == "metrics-out")
            opt.metricsOut = val;
        else if (key == "metrics-period")
            opt.metricsPeriod = std::atoll(val.c_str());
        else if (key == "fault-drop")
            opt.faultDrop = std::atof(val.c_str());
        else if (key == "fault-plan")
            opt.faultPlanPath = val;
        else if (key == "profile-out")
            opt.profileOut = val;
        else if (key == "profile-folded")
            opt.profileFolded = val;
        else if (key == "progress")
            opt.progress = val != "0";
        else if (key == "seed")
            opt.seed = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "journal")
            opt.journal = val;
        else if (key == "resume")
            opt.resume = val != "0";
        else if (key == "isolate")
            opt.isolate = val != "0";
        else if (key == "deadline-s")
            opt.deadlineS = std::atof(val.c_str());
        else if (key == "heartbeat-s")
            opt.heartbeatS = std::atof(val.c_str());
        else if (key == "rss-mb")
            opt.rssMb = std::strtoull(val.c_str(), nullptr, 10);
        else {
            std::cerr << "unknown option: --" << key << "\n";
            return false;
        }
    }
    if (opt.mode != "mva" && opt.mode != "sim" && opt.mode != "both") {
        std::cerr << "--mode must be mva, sim or both\n";
        return false;
    }
    if (opt.n < 2 || opt.rates.empty() || opt.block == 0) {
        std::cerr << "invalid parameters\n";
        return false;
    }
    return true;
}

/**
 * Load --fault-plan. Exit codes follow the artifact-shape convention
 * (tools/fuzz_campaign): 0 ok, 2 cannot open, 4 the file itself is
 * malformed — with faultPlanParseError's reason, so an unknown
 * fault-kind string is called out by name instead of being silently
 * defaulted.
 */
int
loadFaultPlan(Options &opt)
{
    if (opt.faultPlanPath.empty())
        return 0;
    std::ifstream in(opt.faultPlanPath);
    if (!in) {
        std::cerr << "sweep_cli: cannot open " << opt.faultPlanPath
                  << "\n";
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    Json j = Json::parse(ss.str(), &err);
    if (!err.empty()) {
        std::cerr << "sweep_cli: " << opt.faultPlanPath
                  << ": bad JSON: " << err << "\n";
        return 4;
    }
    if (std::string why = faultPlanParseError(j); !why.empty()) {
        std::cerr << "sweep_cli: " << opt.faultPlanPath << ": " << why
                  << "\n";
        return 4;
    }
    if (!faultPlanFromJson(j, opt.faultPlan)) {
        std::cerr << "sweep_cli: " << opt.faultPlanPath
                  << ": fault plan does not parse\n";
        return 4;
    }
    opt.haveFaultPlan = true;
    return 0;
}

std::string
mvaRow(const Options &opt, double rate)
{
    MvaParams p;
    p.n = opt.n;
    p.requestsPerMs = rate;
    p.blockWords = opt.block;
    p.fracWriteUnmod = opt.invFrac;
    p.fracReadUnmod = 0.8 - opt.invFrac;
    MvaResult r = MvaModel(p).solve();
    std::ostringstream os;
    os << "mva," << opt.n << ',' << rate << ',' << opt.block << ','
       << r.efficiency << ',' << r.rowUtilization << ','
       << r.colUtilization << ',' << r.responseTimeNs << '\n';
    return os.str();
}

/**
 * stderr heartbeat for long sweeps (--progress). Every write is one
 * buffered fputs, so concurrent workers cannot shear a line; the
 * carriage return keeps a TTY to a single status line. Mid-point
 * beats ride the ProgressMonitor's periodic check, so a livelocked
 * point shows a frozen event count rather than silence.
 */
struct SweepProgress
{
    std::size_t total = 0;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    std::atomic<std::uint64_t> events{0};

    void beat(std::uint64_t live_events)
    {
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        std::size_t d = done.load(std::memory_order_relaxed);
        double ev = static_cast<double>(
            events.load(std::memory_order_relaxed) + live_events);
        double eta =
            d ? s * static_cast<double>(total - d) / static_cast<double>(d)
              : 0.0;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "\r[sweep] %zu/%zu points, %.2fM events/s%s%.0fs   ",
                      d, total, s > 0 ? ev / s / 1e6 : 0.0,
                      d ? ", ETA " : ", ETA >", eta);
        std::fputs(buf, stderr);
        std::fflush(stderr);
    }

    void pointDone(std::uint64_t point_events)
    {
        events.fetch_add(point_events, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
        beat(0);
    }

    void finish() const
    {
        std::fputc('\n', stderr);
        std::fflush(stderr);
    }
};

std::string
simRow(const Options &opt, double rate, std::uint64_t seed,
       const run::Heartbeat *hb = nullptr, SweepProgress *prog = nullptr)
{
    // Self-profiling of the host: activated before the system is
    // built so construction-time scheduling is attributed too. The
    // profiler never touches simulation state, so the row is
    // byte-identical with profiling on or off.
    bool profiling =
        !opt.profileOut.empty() || !opt.profileFolded.empty();
    SimProfiler prof;
    if (profiling)
        prof.activate();

    SystemParams sp;
    sp.n = opt.n;
    sp.seed = seed;
    sp.simThreads = opt.simThreads;
    sp.bus.blockWords = opt.block;
    if (opt.faultDrop > 0.0 || opt.haveFaultPlan)
        sp.ctrl.requestTimeoutTicks = 500'000;
    MulticubeSystem sys(sp);

    // Crash diagnosis + supervised-worker liveness (observation only;
    // the row stays byte-identical with or without either attached).
    run::ScopedCrashContext crashCtx(
        [&sys] { return sys.dumpPendingState(); });
    std::unique_ptr<ProgressMonitor> monitor;
    const bool beating = hb && hb->active();
    if (beating || prog) {
        if (beating)
            hb->beat();
        ProgressMonitorParams mp;
        mp.onProgress = [hb, beating, prog, &sys] {
            if (beating)
                hb->beat();
            if (prog)
                prog->beat(sys.eventQueue().eventsExecuted());
        };
        monitor = std::make_unique<ProgressMonitor>(sys, mp);
        monitor->start();
    }
    // Under the parallel engine the supervisor heartbeat also rides
    // the coordinator's inter-window hook: if the worker pool wedges,
    // windows stop, the beat stops, and the supervisor triages the
    // point as Stalled instead of hanging the sweep.
    if (ParallelEngine *eng = sys.parallelEngine();
        eng && (beating || prog)) {
        eng->setProgressHook([hb, beating, prog, &sys] {
            if (beating)
                hb->beat();
            if (prog)
                prog->beat(sys.eventQueue().eventsExecuted());
        });
    }

    bool tracing = !opt.traceOut.empty() || !opt.traceText.empty();
    TransactionTracer tracer(opt.traceCap);
    if (tracing)
        tracer.activate();

    std::unique_ptr<FaultInjector> inj;
    std::unique_ptr<ReconfigurationManager> reconfig;
    if (opt.haveFaultPlan) {
        inj = std::make_unique<FaultInjector>(sys, opt.faultPlan);
        inj->regStats(sys.statistics());
        // Fail-stop specs need the full degradation machinery; no
        // checker here — sweeps measure throughput, the coherence
        // oracle lives in the tests and the fuzz campaign.
        if (ReconfigurationManager::planNeedsReconfig(opt.faultPlan)) {
            reconfig = std::make_unique<ReconfigurationManager>(
                sys, opt.faultPlan);
            reconfig->regStats(sys.statistics());
        }
    } else if (opt.faultDrop > 0.0) {
        inj = std::make_unique<FaultInjector>(
            sys, FaultPlan::dropRequests(opt.faultDrop));
    }

    std::ofstream metrics;
    std::unique_ptr<MetricsSampler> sampler;
    if (!opt.metricsOut.empty()) {
        metrics.open(opt.metricsOut);
        sampler = std::make_unique<MetricsSampler>(
            sys, opt.metricsPeriod, metrics);
        sampler->start();
    }

    MixParams mix;
    mix.requestsPerMs = rate;
    mix.fracWriteUnmod = opt.invFrac;
    mix.fracReadUnmod = 0.8 - opt.invFrac;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(opt.simMs * 1e6));
    wl.stop();
    // Sample bus utilization at workload end: it is a time-average,
    // and the drain tail's length depends on attached observers (the
    // progress monitor's pending check extends it), which must never
    // show in the row.
    double rowUtil = sys.meanBusUtilization(0);
    double colUtil = sys.meanBusUtilization(1);
    if (sampler)
        sampler->stop();  // rearm events would keep drain() spinning
    sys.drain();

    if (tracing) {
        tracer.deactivate();
        if (!opt.traceOut.empty()) {
            std::ofstream out(opt.traceOut);
            tracer.exportChromeJson(out);
        }
        if (!opt.traceText.empty()) {
            std::ofstream out(opt.traceText);
            tracer.exportText(out);
        }
    }
    if (profiling) {
        prof.deactivate();
        if (!opt.profileOut.empty()) {
            std::ofstream out(opt.profileOut);
            prof.exportJson(out);
        }
        if (!opt.profileFolded.empty()) {
            std::ofstream out(opt.profileFolded);
            prof.exportFolded(out);
        }
    }
    if (!opt.parStatsOut.empty() && sys.parallelEngine()) {
        std::ofstream out(opt.parStatsOut);
        sys.parallelEngine()->telemetryJson(out);
    }
    if (prog)
        prog->pointDone(sys.eventQueue().eventsExecuted());

    std::ostringstream os;
    os << "sim," << opt.n << ',' << rate << ',' << opt.block << ','
       << wl.efficiency() << ',' << rowUtil << ',' << colUtil << ','
       << wl.meanLatency() << '\n';
    return os.str();
}

/** Canonical identity of this sweep: everything that determines what
 *  the simulated rows contain (not how they are executed — jobs /
 *  isolation / deadlines don't belong in the key). */
std::string
sweepIdentity(const Options &opt)
{
    std::ostringstream oss;
    oss << "sweep_cli|n=" << opt.n << "|seed=" << opt.seed
        << "|block=" << opt.block << "|ms=" << opt.simMs
        << "|inv=" << opt.invFrac << "|drop=" << opt.faultDrop;
    // The parallel engine is its own canonical schedule, so journaled
    // rows from it must not satisfy a sequential resume (or vice
    // versa). The *worker count* is deliberately absent: results are
    // identical for every --sim-threads >= 1. Appended only when
    // active so pre-existing sequential journals keep their identity.
    if (opt.simThreads > 0)
        oss << "|parallel=1";
    // The plan's *content* (not its path) determines the rows.
    if (opt.haveFaultPlan)
        oss << "|plan=" << toJson(opt.faultPlan).dump(-1);
    oss << "|rates=";
    for (std::size_t i = 0; i < opt.rates.size(); ++i)
        oss << (i ? "," : "") << opt.rates[i];
    oss << "|rev=" << run::gitRevision();
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    run::installCrashHandler("sweep_cli");

    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (int rc = loadFaultPlan(opt); rc != 0)
        return rc;

    run::GracefulShutdown::install();

    unsigned jobs = sweep::resolveJobs(opt.jobs);
    const bool observing = !opt.traceOut.empty()
                        || !opt.traceText.empty()
                        || !opt.metricsOut.empty()
                        || !opt.profileOut.empty()
                        || !opt.profileFolded.empty();
    if (jobs > 1 && observing) {
        std::cerr << "sweep_cli: tracing/metrics/profiling are "
                     "process-global single-run tools; forcing "
                     "--jobs=1\n";
        jobs = 1;
    }
    // Profiling and tracing are lane-aware (per-lane shards, merged
    // canonically at window boundaries) and compose with the parallel
    // single-simulation engine; metrics sampling and fault injection
    // still need the sequential engine. The policy — and the exact
    // warning text naming each forcing flag — lives in the library so
    // tests can assert it (sim/sim_threads_policy.hh). When the
    // engine *is* active it owns the worker pool — point-level --jobs
    // parallelism would oversubscribe the host, so jobs collapses
    // to 1.
    {
        SimThreadsRequest req;
        req.simThreads = opt.simThreads;
        req.metricsSampling = !opt.metricsOut.empty();
        req.faultDrop = opt.faultDrop > 0.0;
        req.faultPlan = opt.haveFaultPlan;
        SimThreadsDecision dec = resolveSimThreads(req);
        for (const std::string &w : dec.warnings)
            std::cerr << "sweep_cli: " << w << "\n";
        opt.simThreads = dec.simThreads;
        if (opt.simThreads > 0 && jobs > 1) {
            std::cerr << "sweep_cli: --sim-threads owns the worker "
                         "pool; forcing --jobs=1\n";
            jobs = 1;
        }
    }
    if (!opt.parStatsOut.empty() && opt.simThreads == 0)
        std::cerr << "sweep_cli: --par-stats-out needs "
                     "--sim-threads>=1; ignoring\n";
    // A heartbeat on a pipe would pollute captured stderr (CI logs,
    // 2>file); only a human at a terminal gets one.
    if (opt.progress && !isatty(fileno(stderr)))
        opt.progress = false;

    const bool simulating = opt.mode == "sim" || opt.mode == "both";
    const bool isolate =
        opt.isolate && simulating && run::Supervisor::supported();
    if (opt.isolate && !isolate && simulating)
        std::cerr << "sweep_cli: process isolation unavailable on "
                     "this platform; running in-process\n";

    // Echo the effective configuration (seed included) ahead of the
    // data so any CSV on disk is re-runnable as-is. '#' lines are
    // comments to downstream tooling.
    std::cout << "# sweep_cli --mode=" << opt.mode << " --n=" << opt.n
              << " --seed=" << opt.seed << " --block=" << opt.block
              << " --ms=" << opt.simMs << " --inv=" << opt.invFrac;
    if (opt.simThreads > 0)
        std::cout << " --sim-threads=" << opt.simThreads;
    if (opt.faultDrop > 0.0)
        std::cout << " --fault-drop=" << opt.faultDrop;
    if (opt.haveFaultPlan)
        std::cout << " --fault-plan=" << opt.faultPlanPath;
    std::cout << " --rates=";
    for (std::size_t i = 0; i < opt.rates.size(); ++i)
        std::cout << (i ? "," : "") << opt.rates[i];
    std::cout << "\n";
    std::cout << "mode,n,req_per_ms,block_words,efficiency,row_util,"
                 "col_util,resp_ns\n";

    // Journal of completed simulation points. (MVA rows are a closed-
    // form model — recomputing them is cheaper than journaling them.)
    run::WorkJournal journal;
    if (!opt.journal.empty() && simulating) {
        if (!opt.resume) {
            std::error_code ec;
            std::filesystem::remove(opt.journal, ec);
        }
        Json hdr = Json::object();
        hdr.set("tool", "sweep_cli");
        hdr.set("identity", sweepIdentity(opt));
        std::string jerr;
        if (!journal.open(opt.journal,
                          run::WorkJournal::keyOf(sweepIdentity(opt)),
                          hdr, &jerr)) {
            std::cerr << "sweep_cli: journal: " << jerr << "\n";
            return 2;
        }
    }

    // Simulation points are independent: fan them out, then emit the
    // buffered rows in rate order so the CSV never depends on job
    // count or completion order. Per-point seeds come from the base
    // seed and the point index for the same reason. Journaled points
    // are emitted verbatim from their recorded rows, so a resumed
    // sweep's data rows are byte-identical to an uninterrupted one.
    std::vector<std::string> simRows(opt.rates.size());
    std::vector<std::string> simNote(opt.rates.size());
    std::vector<std::size_t> pending;
    bool interrupted = false;
    SweepProgress progress;
    if (simulating) {
        for (std::size_t i = 0; i < opt.rates.size(); ++i) {
            const std::string item = "sim_" + std::to_string(i);
            if (const Json *rec = journal.find(item))
                simRows[i] = rec->str("row");
            else
                pending.push_back(i);
        }
        SweepProgress *prog = nullptr;
        if (opt.progress) {
            progress.total = pending.size();
            prog = &progress;
        }

        auto stop = [] { return run::GracefulShutdown::requested(); };
        auto recordRow = [&](std::size_t i) {
            if (!journal.isOpen())
                return;
            Json e = Json::object();
            e.set("row", simRows[i]);
            journal.record("sim_" + std::to_string(i), e);
        };

        if (isolate) {
            run::WorkerLimits lim;
            lim.wallSeconds = opt.deadlineS;
            lim.heartbeatSeconds = opt.heartbeatS;
            lim.rssBytes = opt.rssMb * (1ull << 20);
            run::Supervisor sup(lim);
            sup.runPool(
                pending.size(), jobs,
                [&](std::size_t k) -> run::Supervisor::ChildFn {
                    std::size_t i = pending[k];
                    return [&opt, i](const run::Heartbeat &hb,
                                     std::string &resultOut) {
                        resultOut =
                            simRow(opt, opt.rates[i],
                                   sweep::pointSeed(opt.seed, i), &hb);
                        return 0;
                    };
                },
                [&](std::size_t k, run::WorkerOutcome &&out) {
                    std::size_t i = pending[k];
                    // Workers are forked processes: the heartbeat
                    // lives in the parent and beats per completed
                    // point (event counts stay in the child).
                    if (prog)
                        prog->pointDone(0);
                    if (out.triage == run::Triage::Clean) {
                        simRows[i] = out.result;
                        recordRow(i);
                        return;
                    }
                    // A dead point is *not* journaled: --resume
                    // retries it.
                    std::ostringstream os;
                    os << "# sim point " << i << " (rate "
                       << opt.rates[i] << "): worker "
                       << run::toString(out.triage);
                    if (out.termSignal)
                        os << " (signal " << out.termSignal << ")";
                    os << "\n";
                    simNote[i] = os.str();
                },
                stop);
        } else {
            sweep::SweepRunner runner(jobs);
            runner.forEach(
                pending.size(),
                [&](std::size_t k) {
                    std::size_t i = pending[k];
                    simRows[i] =
                        simRow(opt, opt.rates[i],
                               sweep::pointSeed(opt.seed, i), nullptr,
                               prog);
                    recordRow(i);
                },
                stop);
        }
        if (prog)
            prog->finish();
        interrupted = run::GracefulShutdown::requested();
    }

    bool missing = false;
    for (std::size_t i = 0; i < opt.rates.size(); ++i) {
        if (opt.mode == "mva" || opt.mode == "both")
            std::cout << mvaRow(opt, opt.rates[i]);
        if (simulating) {
            if (!simRows[i].empty()) {
                std::cout << simRows[i];
            } else {
                missing = true;
                std::cout << (!simNote[i].empty()
                                  ? simNote[i]
                                  : "# sim point " + std::to_string(i)
                                        + " not run (interrupted)\n");
            }
        }
    }

    if (journal.isOpen() && !missing)
        journal.finish();
    if (interrupted) {
        std::cerr << "sweep_cli: interrupted; partial CSV emitted";
        if (journal.isOpen())
            std::cerr << ", resume with --journal=" << opt.journal
                      << " --resume";
        std::cerr << "\n";
        return run::GracefulShutdown::exitCode();
    }
    return missing ? 1 : 0;
}
