/**
 * @file
 * A small command-line driver for parameter sweeps, emitting CSV —
 * the tool a study of the machine would actually script against.
 *
 *   $ ./sweep_cli --mode=mva --n=32 --rates=1,5,10,20,25,30,40,50
 *   $ ./sweep_cli --mode=sim --n=8 --rates=5,15,25 --ms=2 --block=16
 *   $ ./sweep_cli --mode=both --n=8 --rates=10,25
 *
 * Columns: mode,n,req_per_ms,block_words,efficiency,row_util,
 * col_util,resp_ns
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"

using namespace mcube;

namespace
{

struct Options
{
    std::string mode = "both";
    unsigned n = 8;
    std::vector<double> rates = {5, 10, 15, 20, 25, 30, 40, 50};
    unsigned block = 16;
    double simMs = 2.0;
    double invFrac = 0.20;
};

std::vector<double>
parseList(const std::string &s)
{
    std::vector<double> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(std::atof(tok.c_str()));
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto eq = a.find('=');
        if (a.rfind("--", 0) != 0 || eq == std::string::npos) {
            std::cerr << "bad argument: " << a << "\n";
            return false;
        }
        std::string key = a.substr(2, eq - 2);
        std::string val = a.substr(eq + 1);
        if (key == "mode")
            opt.mode = val;
        else if (key == "n")
            opt.n = std::atoi(val.c_str());
        else if (key == "rates")
            opt.rates = parseList(val);
        else if (key == "block")
            opt.block = std::atoi(val.c_str());
        else if (key == "ms")
            opt.simMs = std::atof(val.c_str());
        else if (key == "inv")
            opt.invFrac = std::atof(val.c_str());
        else {
            std::cerr << "unknown option: --" << key << "\n";
            return false;
        }
    }
    if (opt.mode != "mva" && opt.mode != "sim" && opt.mode != "both") {
        std::cerr << "--mode must be mva, sim or both\n";
        return false;
    }
    if (opt.n < 2 || opt.rates.empty() || opt.block == 0) {
        std::cerr << "invalid parameters\n";
        return false;
    }
    return true;
}

void
emitMva(const Options &opt, double rate)
{
    MvaParams p;
    p.n = opt.n;
    p.requestsPerMs = rate;
    p.blockWords = opt.block;
    p.fracWriteUnmod = opt.invFrac;
    p.fracReadUnmod = 0.8 - opt.invFrac;
    MvaResult r = MvaModel(p).solve();
    std::cout << "mva," << opt.n << ',' << rate << ',' << opt.block
              << ',' << r.efficiency << ',' << r.rowUtilization << ','
              << r.colUtilization << ',' << r.responseTimeNs << '\n';
}

void
emitSim(const Options &opt, double rate)
{
    SystemParams sp;
    sp.n = opt.n;
    sp.bus.blockWords = opt.block;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = rate;
    mix.fracWriteUnmod = opt.invFrac;
    mix.fracReadUnmod = 0.8 - opt.invFrac;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(opt.simMs * 1e6));
    wl.stop();
    sys.drain();
    std::cout << "sim," << opt.n << ',' << rate << ',' << opt.block
              << ',' << wl.efficiency() << ','
              << sys.meanBusUtilization(0) << ','
              << sys.meanBusUtilization(1) << ',' << wl.meanLatency()
              << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    std::cout << "mode,n,req_per_ms,block_words,efficiency,row_util,"
                 "col_util,resp_ns\n";
    for (double rate : opt.rates) {
        if (opt.mode == "mva" || opt.mode == "both")
            emitMva(opt, rate);
        if (opt.mode == "sim" || opt.mode == "both")
            emitSim(opt, rate);
    }
    return 0;
}
