/**
 * @file
 * A small command-line driver for parameter sweeps, emitting CSV —
 * the tool a study of the machine would actually script against.
 *
 *   $ ./sweep_cli --mode=mva --n=32 --rates=1,5,10,20,25,30,40,50
 *   $ ./sweep_cli --mode=sim --n=8 --rates=5,15,25 --ms=2 --block=16
 *   $ ./sweep_cli --mode=both --n=8 --rates=10,25 --jobs=4
 *
 * Columns: mode,n,req_per_ms,block_words,efficiency,row_util,
 * col_util,resp_ns
 *
 * Parallelism:
 *   --jobs=N               run simulation points on N worker threads
 *                          (0 = all hardware threads; default 1).
 *                          Each point's seed is derived from the base
 *                          seed and the point's index, and rows are
 *                          emitted in rate order, so the CSV is
 *                          byte-identical for any job count.
 *
 * Observability (sim mode):
 *   --trace-out=t.json     Chrome trace-event JSON (Perfetto-viewable;
 *                          also readable by tools/trace_report)
 *   --trace-text=t.txt     flat text trace, one event per line
 *   --trace-cap=N          trace ring capacity (default 65536 events)
 *   --metrics-out=m.jsonl  interval metrics snapshots, one JSON/line
 *   --metrics-period=T     snapshot period in ticks (default 50000)
 *   --fault-drop=P         drop requests with probability P (enables
 *                          the transaction watchdog), so recovery
 *                          chains appear in the trace
 *   --seed=S               system base seed (sim mode); the effective
 *                          seed and full configuration are echoed in
 *                          the '#' header line, so a saved CSV is
 *                          always re-runnable
 *
 * Tracing and metrics snapshots are process-global, single-run tools:
 * requesting them forces --jobs=1 (with a warning). With several
 * --rates, the files cover the *last* simulated point (each point
 * truncates them); use a single rate when tracing.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"
#include "sim/sweep_runner.hh"
#include "trace/metrics_sampler.hh"
#include "trace/trace_event.hh"

using namespace mcube;

namespace
{

struct Options
{
    std::string mode = "both";
    unsigned n = 8;
    std::vector<double> rates = {5, 10, 15, 20, 25, 30, 40, 50};
    unsigned block = 16;
    double simMs = 2.0;
    double invFrac = 0.20;
    unsigned jobs = 1;
    std::string traceOut;
    std::string traceText;
    std::size_t traceCap = 1 << 16;
    std::string metricsOut;
    Tick metricsPeriod = 50'000;
    double faultDrop = 0.0;
    std::uint64_t seed = SystemParams{}.seed;
};

std::vector<double>
parseList(const std::string &s)
{
    std::vector<double> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(std::atof(tok.c_str()));
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto eq = a.find('=');
        if (a.rfind("--", 0) != 0 || eq == std::string::npos) {
            std::cerr << "bad argument: " << a << "\n";
            return false;
        }
        std::string key = a.substr(2, eq - 2);
        std::string val = a.substr(eq + 1);
        if (key == "mode")
            opt.mode = val;
        else if (key == "n")
            opt.n = std::atoi(val.c_str());
        else if (key == "rates")
            opt.rates = parseList(val);
        else if (key == "block")
            opt.block = std::atoi(val.c_str());
        else if (key == "ms")
            opt.simMs = std::atof(val.c_str());
        else if (key == "inv")
            opt.invFrac = std::atof(val.c_str());
        else if (key == "jobs")
            opt.jobs = std::atoi(val.c_str());
        else if (key == "trace-out")
            opt.traceOut = val;
        else if (key == "trace-text")
            opt.traceText = val;
        else if (key == "trace-cap")
            opt.traceCap = std::atoll(val.c_str());
        else if (key == "metrics-out")
            opt.metricsOut = val;
        else if (key == "metrics-period")
            opt.metricsPeriod = std::atoll(val.c_str());
        else if (key == "fault-drop")
            opt.faultDrop = std::atof(val.c_str());
        else if (key == "seed")
            opt.seed = std::strtoull(val.c_str(), nullptr, 10);
        else {
            std::cerr << "unknown option: --" << key << "\n";
            return false;
        }
    }
    if (opt.mode != "mva" && opt.mode != "sim" && opt.mode != "both") {
        std::cerr << "--mode must be mva, sim or both\n";
        return false;
    }
    if (opt.n < 2 || opt.rates.empty() || opt.block == 0) {
        std::cerr << "invalid parameters\n";
        return false;
    }
    return true;
}

std::string
mvaRow(const Options &opt, double rate)
{
    MvaParams p;
    p.n = opt.n;
    p.requestsPerMs = rate;
    p.blockWords = opt.block;
    p.fracWriteUnmod = opt.invFrac;
    p.fracReadUnmod = 0.8 - opt.invFrac;
    MvaResult r = MvaModel(p).solve();
    std::ostringstream os;
    os << "mva," << opt.n << ',' << rate << ',' << opt.block << ','
       << r.efficiency << ',' << r.rowUtilization << ','
       << r.colUtilization << ',' << r.responseTimeNs << '\n';
    return os.str();
}

std::string
simRow(const Options &opt, double rate, std::uint64_t seed)
{
    SystemParams sp;
    sp.n = opt.n;
    sp.seed = seed;
    sp.bus.blockWords = opt.block;
    if (opt.faultDrop > 0.0)
        sp.ctrl.requestTimeoutTicks = 500'000;
    MulticubeSystem sys(sp);

    bool tracing = !opt.traceOut.empty() || !opt.traceText.empty();
    TransactionTracer tracer(opt.traceCap);
    if (tracing)
        tracer.activate();

    std::unique_ptr<FaultInjector> inj;
    if (opt.faultDrop > 0.0)
        inj = std::make_unique<FaultInjector>(
            sys, FaultPlan::dropRequests(opt.faultDrop));

    std::ofstream metrics;
    std::unique_ptr<MetricsSampler> sampler;
    if (!opt.metricsOut.empty()) {
        metrics.open(opt.metricsOut);
        sampler = std::make_unique<MetricsSampler>(
            sys, opt.metricsPeriod, metrics);
        sampler->start();
    }

    MixParams mix;
    mix.requestsPerMs = rate;
    mix.fracWriteUnmod = opt.invFrac;
    mix.fracReadUnmod = 0.8 - opt.invFrac;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(opt.simMs * 1e6));
    wl.stop();
    if (sampler)
        sampler->stop();  // rearm events would keep drain() spinning
    sys.drain();

    if (tracing) {
        tracer.deactivate();
        if (!opt.traceOut.empty()) {
            std::ofstream out(opt.traceOut);
            tracer.exportChromeJson(out);
        }
        if (!opt.traceText.empty()) {
            std::ofstream out(opt.traceText);
            tracer.exportText(out);
        }
    }

    std::ostringstream os;
    os << "sim," << opt.n << ',' << rate << ',' << opt.block << ','
       << wl.efficiency() << ',' << sys.meanBusUtilization(0) << ','
       << sys.meanBusUtilization(1) << ',' << wl.meanLatency()
       << '\n';
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    unsigned jobs = sweep::resolveJobs(opt.jobs);
    const bool observing = !opt.traceOut.empty()
                        || !opt.traceText.empty()
                        || !opt.metricsOut.empty();
    if (jobs > 1 && observing) {
        std::cerr << "sweep_cli: tracing/metrics are process-global "
                     "single-run tools; forcing --jobs=1\n";
        jobs = 1;
    }

    // Echo the effective configuration (seed included) ahead of the
    // data so any CSV on disk is re-runnable as-is. '#' lines are
    // comments to downstream tooling.
    std::cout << "# sweep_cli --mode=" << opt.mode << " --n=" << opt.n
              << " --seed=" << opt.seed << " --block=" << opt.block
              << " --ms=" << opt.simMs << " --inv=" << opt.invFrac;
    if (opt.faultDrop > 0.0)
        std::cout << " --fault-drop=" << opt.faultDrop;
    std::cout << " --rates=";
    for (std::size_t i = 0; i < opt.rates.size(); ++i)
        std::cout << (i ? "," : "") << opt.rates[i];
    std::cout << "\n";
    std::cout << "mode,n,req_per_ms,block_words,efficiency,row_util,"
                 "col_util,resp_ns\n";

    // Simulation points are independent: fan them out, then emit the
    // buffered rows in rate order so the CSV never depends on job
    // count or completion order. Per-point seeds come from the base
    // seed and the point index for the same reason.
    std::vector<std::string> simRows(opt.rates.size());
    if (opt.mode == "sim" || opt.mode == "both") {
        sweep::SweepRunner runner(jobs);
        runner.forEach(opt.rates.size(), [&](std::size_t i) {
            simRows[i] = simRow(opt, opt.rates[i],
                                sweep::pointSeed(opt.seed, i));
        });
    }
    for (std::size_t i = 0; i < opt.rates.size(); ++i) {
        if (opt.mode == "mva" || opt.mode == "both")
            std::cout << mvaRow(opt, opt.rates[i]);
        if (opt.mode == "sim" || opt.mode == "both")
            std::cout << simRows[i];
    }
    return 0;
}
