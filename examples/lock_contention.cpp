/**
 * @file
 * Section 4 in action: eight workers hammer one lock protecting a
 * shared counter, under each of the three disciplines —
 * test-and-test-and-set, remote test-and-set, and the SYNC
 * distributed queue lock. Prints bus operations per lock hand-off,
 * showing the queue lock "collapsing bus traffic to a very low
 * level".
 *
 *   $ ./lock_contention [workers] [iterations]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "proc/processor.hh"
#include "proc/program.hh"

using namespace mcube;
using namespace mcube::prog;

namespace
{

struct RunResult
{
    std::uint64_t busOps = 0;
    Tick elapsed = 0;
    std::uint64_t counter = 0;
    std::uint64_t spinReads = 0;
    std::uint64_t tsetAttempts = 0;
};

RunResult
run(OpCode kind, unsigned workers, unsigned iters)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    const Addr lock = 500, counter = 501;

    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<ProgramRunner>> runners;
    for (unsigned i = 0; i < workers; ++i) {
        ProcessorParams pp;
        procs.push_back(std::make_unique<Processor>(
            "p" + std::to_string(i), sys.eventQueue(),
            sys.node((i * 5) % sys.numNodes()), pp));
        runners.push_back(std::make_unique<ProgramRunner>(
            "r" + std::to_string(i), sys.eventQueue(), *procs.back(),
            std::vector<Instr>{
                setCnt(iters),
                Instr{kind, lock, 0, 0},
                load(counter),
                addAcc(1),
                storeAcc(counter),
                unlock(lock, 1),
                decJnz(1),
                halt(),
            },
            1000 + i));
    }
    for (auto &r : runners)
        r->start();
    sys.eventQueue().runUntil(8'000'000'000ull);
    sys.drain();

    RunResult out;
    out.busOps = sys.totalBusOps();
    for (auto &r : runners)
        out.elapsed = std::max(out.elapsed, r->finishTick());
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        if (sys.node(id).modeOf(counter) == Mode::Modified)
            out.counter = sys.node(id).dataOf(counter).token;
    for (auto &r : runners) {
        out.spinReads += r->spinReads();
        out.tsetAttempts += r->tsetAttempts();
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = argc > 1 ? std::atoi(argv[1]) : 8;
    unsigned iters = argc > 2 ? std::atoi(argv[2]) : 10;
    std::uint64_t handoffs =
        static_cast<std::uint64_t>(workers) * iters;

    std::cout << workers << " workers x " << iters
              << " critical sections on a 4x4 Multicube\n\n"
              << std::left << std::setw(22) << "discipline"
              << std::right << std::setw(10) << "bus ops"
              << std::setw(12) << "ops/crit"
              << std::setw(12) << "us total"
              << std::setw(14) << "tset tries"
              << std::setw(10) << "count" << "\n";

    struct
    {
        const char *name;
        OpCode kind;
    } kinds[] = {
        {"test-and-test-and-set", OpCode::LockTTS},
        {"remote test-and-set", OpCode::LockTset},
        {"SYNC queue lock", OpCode::LockSync},
    };

    for (const auto &k : kinds) {
        RunResult r = run(k.kind, workers, iters);
        std::cout << std::left << std::setw(22) << k.name
                  << std::right << std::setw(10) << r.busOps
                  << std::setw(12) << std::fixed
                  << std::setprecision(1)
                  << static_cast<double>(r.busOps) / handoffs
                  << std::setw(12) << r.elapsed / 1000.0
                  << std::setw(14) << r.tsetAttempts
                  << std::setw(10) << r.counter
                  << (r.counter == handoffs ? "  ok" : "  LOST!")
                  << "\n";
    }
    return 0;
}
