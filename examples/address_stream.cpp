/**
 * @file
 * Demonstrates the Section 2 thesis: "The proposed cache structure
 * should reduce the bus traffic to the point that nearly all
 * operations are either accesses to true shared data, or they are
 * true I/O."
 *
 * Every processor issues one memory reference per 100 ns against a
 * private working set plus a small shared hot set, through the
 * two-level hierarchy. After warm-up, the observed bus request rate
 * collapses to the shared-data component — the quantity the paper
 * budgets at "less than twenty-five requests per millisecond per
 * processor".
 *
 *   $ ./address_stream [shared_pct]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/system.hh"
#include "proc/address_workload.hh"

using namespace mcube;

int
main(int argc, char **argv)
{
    double shared_pct = argc > 1 ? std::atof(argv[1]) : 1.0;

    SystemParams sp;
    sp.n = 4;
    sp.ctrl.cache = {512, 8};  // 4096-line snooping cache per node
    MulticubeSystem sys(sp);

    AddressWorkloadParams wp;
    wp.privateLines = 256;
    wp.sharedLines = 64;
    wp.pShared = shared_pct / 100.0;
    wp.thinkTicks = 100;  // 10M references/s per processor
    AddressWorkload wl(sys, wp);

    std::cout << "16 processors, 10M refs/s each, "
              << wp.privateLines << " private lines + "
              << wp.sharedLines << " shared lines, " << shared_pct
              << "% shared references\n\n";
    std::cout << std::left << std::setw(12) << "window"
              << std::right << std::setw(16) << "bus req/ms/proc"
              << std::setw(14) << "L2 hit rate"
              << std::setw(14) << "row bus util" << "\n";

    wl.start();
    std::uint64_t prev_misses = 0;
    Tick window = 1'000'000;  // 1 ms
    for (unsigned w = 1; w <= 12; ++w) {
        sys.run(window);
        std::uint64_t misses = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id)
            misses += sys.node(id).misses();
        double rate = static_cast<double>(misses - prev_misses)
                    / sys.numNodes();
        prev_misses = misses;
        std::cout << std::left << std::setw(12)
                  << (std::to_string(w) + " ms") << std::right
                  << std::fixed << std::setprecision(1)
                  << std::setw(16) << rate << std::setprecision(3)
                  << std::setw(14) << wl.l2HitRate()
                  << std::setw(14) << sys.meanBusUtilization(0)
                  << "\n";
    }
    wl.stop();
    sys.drain();

    std::cout << "\nThe first window carries the cold misses; the "
                 "steady state is\nthe shared-data rate the paper "
                 "budgets against (< 25 req/ms\nfor 90% efficiency at "
                 "1K processors).\n";
    return 0;
}
