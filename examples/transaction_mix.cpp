/**
 * @file
 * Runs the paper's synthetic transaction mix on a simulated 8 x 8
 * machine (64 processors) and compares the measured efficiency and
 * bus utilisation against the MVA model's prediction for the same
 * configuration — the simulation-vs-model cross-check that the
 * original paper could not perform.
 *
 *   $ ./transaction_mix [requests_per_ms] [n]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/system.hh"
#include "mva/mva_model.hh"
#include "proc/mix_workload.hh"

using namespace mcube;

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 25.0;
    unsigned n = argc > 2 ? std::atoi(argv[2]) : 8;

    std::cout << "machine: " << n << " x " << n << " = " << n * n
              << " processors, " << rate
              << " bus requests/ms per processor\n\n";

    // --- Event-driven simulation ---
    SystemParams sp;
    sp.n = n;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = rate;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(4'000'000);  // 4 ms of simulated time
    wl.stop();
    sys.drain();

    // --- MVA model ---
    MvaParams mp;
    mp.n = n;
    mp.requestsPerMs = rate;
    MvaResult mva = MvaModel(mp).solve();

    std::cout << std::fixed << std::setprecision(3);
    std::cout << std::left << std::setw(26) << ""
              << std::right << std::setw(12) << "simulation"
              << std::setw(12) << "MVA model" << "\n";
    std::cout << std::left << std::setw(26) << "efficiency"
              << std::right << std::setw(12) << wl.efficiency()
              << std::setw(12) << mva.efficiency << "\n";
    std::cout << std::left << std::setw(26) << "row bus utilisation"
              << std::right << std::setw(12)
              << sys.meanBusUtilization(0) << std::setw(12)
              << mva.rowUtilization << "\n";
    std::cout << std::left << std::setw(26) << "column bus utilisation"
              << std::right << std::setw(12)
              << sys.meanBusUtilization(1) << std::setw(12)
              << mva.colUtilization << "\n";
    std::cout << std::left << std::setw(26) << "mean latency (ns)"
              << std::right << std::setw(12) << std::setprecision(0)
              << wl.meanLatency() << std::setw(12)
              << mva.responseTimeNs << "\n\n";

    std::cout << std::setprecision(3)
              << "transactions completed: " << wl.totalCompleted()
              << "  (reads to unmod " << wl.completed(0)
              << ", reads to mod " << wl.completed(1)
              << ", writes to unmod " << wl.completed(2)
              << ", writes to mod " << wl.completed(3) << ")\n"
              << "achieved modified-target fraction: "
              << wl.achievedModifiedFraction() << "\n";
    return 0;
}
