/**
 * @file
 * An SPMD phased computation — the bulk-synchronous pattern behind
 * "large-scale simulation models ... as well as a host of numerical
 * methods" the paper targets. Each worker repeatedly: computes on its
 * private slice, publishes a partial result, and meets the others at
 * a barrier built from the Section 4 primitives (SYNC-locked counter,
 * cached-generation spinning).
 *
 *   $ ./barrier_phases [workers] [phases]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/barrier.hh"
#include "proc/processor.hh"

using namespace mcube;

namespace
{

constexpr BarrierAddrs kBarrier{600, 601, 602};
constexpr Addr kPartials = 640;  //!< one result line per worker

/** A worker node cycling compute -> publish -> barrier. */
class Worker
{
  public:
    Worker(MulticubeSystem &sys, NodeId node, unsigned id,
           unsigned workers, unsigned phases)
        : sys(sys), id(id), phases(phases),
          proc("w" + std::to_string(id), sys.eventQueue(),
               sys.node(node), ProcessorParams{}),
          barrier(proc, kBarrier, workers)
    {
    }

    void start() { computePhase(); }

    bool done() const { return phase >= phases; }
    const std::vector<Tick> &phaseEnds() const { return ends; }
    std::uint64_t spinReads() const { return barrier.spinReads(); }

  private:
    void
    computePhase()
    {
        if (phase >= phases)
            return;
        // Unbalanced compute: worker i takes 2 + i/2 microseconds.
        Tick work = 2000 + 500 * id;
        sys.eventQueue().scheduleIn(work, [this] { publish(); });
    }

    void
    publish()
    {
        proc.store(kPartials + id, (phase + 1) * 100 + id, [this] {
            barrier.arrive([this] {
                ends.push_back(sys.eventQueue().now());
                ++phase;
                computePhase();
            });
        });
    }

    MulticubeSystem &sys;
    unsigned id;
    unsigned phases;
    Processor proc;
    BarrierMember barrier;
    unsigned phase = 0;
    std::vector<Tick> ends;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = argc > 1 ? std::atoi(argv[1]) : 8;
    unsigned phases = argc > 2 ? std::atoi(argv[2]) : 4;

    SystemParams params;
    params.n = 4;
    MulticubeSystem sys(params);
    CoherenceChecker checker(sys);

    std::vector<std::unique_ptr<Worker>> pool;
    for (unsigned i = 0; i < workers; ++i) {
        pool.push_back(std::make_unique<Worker>(
            sys, (i * 5 + 2) % sys.numNodes(), i, workers, phases));
        pool.back()->start();
    }

    sys.eventQueue().runUntil(8'000'000'000ull);
    sys.drain();

    bool all_done = true;
    std::uint64_t spins = 0;
    for (auto &w : pool) {
        all_done = all_done && w->done();
        spins += w->spinReads();
    }

    std::cout << workers << " workers x " << phases
              << " phases (unbalanced compute 2.0.."
              << 2.0 + 0.5 * (workers - 1) << " us)\n\n";
    std::cout << "phase completion times (us):\n";
    for (unsigned ph = 0; ph < phases; ++ph) {
        Tick lo = maxTick, hi = 0;
        for (auto &w : pool) {
            if (ph < w->phaseEnds().size()) {
                lo = std::min(lo, w->phaseEnds()[ph]);
                hi = std::max(hi, w->phaseEnds()[ph]);
            }
        }
        std::cout << "  phase " << ph << ": all released within "
                  << std::fixed << std::setprecision(2)
                  << (hi - lo) / 1000.0 << " us of each other at t="
                  << hi / 1000.0 << "\n";
    }
    std::cout << "\nbarrier spin reads (all bus-silent): " << spins
              << "\nbus operations: " << sys.totalBusOps()
              << "\ncoherence violations: " << checker.violations()
              << "\nall workers finished: " << std::boolalpha
              << all_done << "\n";
    return all_done && checker.violations() == 0 ? 0 : 1;
}
