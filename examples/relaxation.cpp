/**
 * @file
 * A bulk-synchronous stencil relaxation — the "host of numerical
 * methods" the paper targets. A ring of cells is partitioned across
 * worker nodes; each phase every worker computes
 *
 *     next[i] = (cur[i-1] + cur[i+1]) mod 2^61
 *
 * for its cells (double-buffered Jacobi style), then meets the others
 * at the Section 4 barrier. Boundary cells are genuinely shared:
 * neighbouring workers read each other's edge cells every phase, so
 * the coherence protocol carries the halo exchange. The final array
 * is checked against a host-computed reference.
 *
 *   $ ./relaxation [workers] [cells] [phases]
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/barrier.hh"
#include "proc/processor.hh"

using namespace mcube;

namespace
{

constexpr BarrierAddrs kBarrier{800, 801, 802};
constexpr Addr bufA = 1000;
constexpr Addr bufB = 2000;
constexpr std::uint64_t kMod = 1ull << 61;

/** One worker owning cells [lo, hi) of the ring. */
class Worker
{
  public:
    Worker(MulticubeSystem &sys, NodeId node, unsigned lo, unsigned hi,
           unsigned cells, unsigned phases, unsigned parties)
        : sys(sys), lo(lo), hi(hi), cells(cells), phases(phases),
          proc("rx" + std::to_string(node), sys.eventQueue(),
               sys.node(node), ProcessorParams{}),
          barrier(proc, kBarrier, parties)
    {
    }

    void start() { beginPhase(); }
    bool done() const { return phase >= phases; }

  private:
    Addr
    cur(unsigned i) const
    {
        return (phase % 2 == 0 ? bufA : bufB) + i;
    }

    Addr
    nxt(unsigned i) const
    {
        return (phase % 2 == 0 ? bufB : bufA) + i;
    }

    void
    beginPhase()
    {
        if (phase >= phases)
            return;
        cell = lo;
        stepCell();
    }

    void
    stepCell()
    {
        if (cell >= hi) {
            barrier.arrive([this] {
                ++phase;
                beginPhase();
            });
            return;
        }
        unsigned left = (cell + cells - 1) % cells;
        unsigned right = (cell + 1) % cells;
        proc.load(cur(left), [this, right](std::uint64_t lv) {
            acc = lv;
            proc.load(cur(right), [this](std::uint64_t rv) {
                std::uint64_t v = (acc + rv) % kMod;
                proc.store(nxt(cell), v, [this] {
                    ++cell;
                    stepCell();
                });
            });
        });
    }

    MulticubeSystem &sys;
    unsigned lo, hi, cells, phases;
    Processor proc;
    BarrierMember barrier;
    unsigned phase = 0;
    unsigned cell = 0;
    std::uint64_t acc = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = argc > 1 ? std::atoi(argv[1]) : 4;
    unsigned cells = argc > 2 ? std::atoi(argv[2]) : 32;
    unsigned phases = argc > 3 ? std::atoi(argv[3]) : 4;

    SystemParams params;
    params.n = 4;
    MulticubeSystem sys(params);
    CoherenceChecker checker(sys);

    // Initialise buffer A with a spike pattern from node 0.
    std::vector<std::uint64_t> host(cells, 0);
    host[0] = 1000;
    host[cells / 2] = 5000;
    for (unsigned i = 0; i < cells; ++i) {
        sys.node(0).writeAllocate(bufA + i, host[i],
                                  [](const TxnResult &) {});
        sys.drain();
    }

    // Host reference computation.
    std::vector<std::uint64_t> curv = host, nxtv(cells, 0);
    for (unsigned p = 0; p < phases; ++p) {
        for (unsigned i = 0; i < cells; ++i)
            nxtv[i] = (curv[(i + cells - 1) % cells]
                       + curv[(i + 1) % cells])
                    % kMod;
        std::swap(curv, nxtv);
    }

    // Launch the workers.
    std::vector<std::unique_ptr<Worker>> pool;
    unsigned per = (cells + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
        unsigned lo = w * per;
        unsigned hi = std::min(cells, lo + per);
        if (lo >= hi)
            break;
        pool.push_back(std::make_unique<Worker>(
            sys, (w * 5 + 3) % sys.numNodes(), lo, hi, cells, phases,
            workers));
        pool.back()->start();
    }

    Tick t0 = sys.eventQueue().now();
    auto all_finished = [&] {
        for (auto &w : pool)
            if (!w->done())
                return false;
        return true;
    };
    while (!all_finished()
           && sys.eventQueue().now() < 20'000'000'000ull)
        sys.run(10'000);
    Tick t_done = sys.eventQueue().now();
    sys.drain();
    bool all_done = all_finished();

    // Read the result back and compare against the reference.
    Addr final_buf = (phases % 2 == 0) ? bufA : bufB;
    unsigned mismatches = 0;
    for (unsigned i = 0; i < cells; ++i) {
        std::uint64_t got = 0;
        bool have = false;
        sys.node(15).read(final_buf + i, got,
                          [&](const TxnResult &r) {
                              got = r.data.token;
                              have = true;
                          });
        sys.drain();
        if (!have || got != curv[i])
            ++mismatches;
    }

    std::cout << workers << " workers x " << cells << " cells x "
              << phases << " phases in " << (t_done - t0) / 1000.0
              << " us\n"
              << "result vs host reference: "
              << (mismatches == 0 ? "identical" : "MISMATCH") << " ("
              << mismatches << " bad cells)\n"
              << "bus operations: " << sys.totalBusOps()
              << ", coherence violations: " << checker.violations()
              << "\nall workers finished: " << std::boolalpha
              << all_done << "\n";
    return mismatches == 0 && all_done && checker.violations() == 0
               ? 0
               : 1;
}
